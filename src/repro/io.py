"""Persistence: save and load databases, workloads, and run results.

A downstream user of the library needs to freeze an experiment — the
exact database snapshot, the exact operation tape, the measured results
— and replay or share it later. Everything is stored in ``.npz``
(arrays) with a small JSON header, no pickling, so files are portable
and safe to load.

Formats
-------
* **database** — one npz with ``ids`` (intp) and ``points`` (float64);
  reloading preserves tuple ids exactly (including gaps from deletions).
* **workload** — npz with the initial matrix plus parallel arrays of
  operation kind/id/point and the snapshot marks.
* **run result** — JSON (scalars only), suitable for diffing across
  machines.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bench.harness import RunResult, SnapshotRecord
from repro.data.database import DELETE, INSERT, Database, Operation
from repro.data.workload import DynamicWorkload

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Database
# ----------------------------------------------------------------------

def save_database(db: Database, path) -> None:
    """Save the alive tuples of ``db`` (ids + values) to ``path``."""
    ids, pts = db.snapshot()
    np.savez_compressed(path, version=_FORMAT_VERSION, kind="database",
                        ids=ids, points=pts, d=db.d,
                        capacity=db.capacity)


def load_database(path) -> Database:
    """Reload a database saved with :func:`save_database`.

    Tuple ids are preserved: ids missing from the stored set (deleted
    before saving) stay permanently dead in the reloaded instance.
    """
    with np.load(path, allow_pickle=False) as data:
        _check(data, "database")
        ids = data["ids"].astype(np.intp)
        pts = data["points"]
        d = int(data["d"])
        capacity = int(data["capacity"])
    db = Database(d=d)
    cursor = 0
    alive = set(int(i) for i in ids)
    row_of = {int(tid): row for row, tid in enumerate(ids)}
    for tid in range(capacity):
        if tid in alive:
            assigned = db.insert(pts[row_of[tid]])
        else:
            # Re-create and immediately kill the id to preserve numbering.
            assigned = db.insert(np.zeros(d))
            db.delete(assigned)
        if assigned != tid:  # pragma: no cover - defensive
            raise RuntimeError(f"id mismatch on reload: {assigned} != {tid}")
        cursor += 1
    return db


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------

def save_workload(workload: DynamicWorkload, path) -> None:
    """Serialize a workload tape (initial matrix + operations)."""
    kinds = np.asarray([1 if op.kind == INSERT else 0
                        for op in workload.operations], dtype=np.int8)
    ids = np.asarray([op.tuple_id if op.tuple_id is not None else -1
                      for op in workload.operations], dtype=np.int64)
    if workload.operations:
        op_points = np.vstack([op.point for op in workload.operations])
    else:
        op_points = np.empty((0, workload.d))
    np.savez_compressed(path, version=_FORMAT_VERSION, kind="workload",
                        initial=workload.initial, kinds=kinds, ids=ids,
                        op_points=op_points,
                        snapshots=np.asarray(workload.snapshots,
                                             dtype=np.int64))


def load_workload(path) -> DynamicWorkload:
    """Reload a workload saved with :func:`save_workload`."""
    with np.load(path, allow_pickle=False) as data:
        _check(data, "workload")
        initial = data["initial"]
        kinds = data["kinds"]
        ids = data["ids"]
        op_points = data["op_points"]
        snapshots = tuple(int(s) for s in data["snapshots"])
    ops = []
    for i in range(kinds.shape[0]):
        kind = INSERT if kinds[i] == 1 else DELETE
        tid = int(ids[i]) if ids[i] >= 0 else None
        ops.append(Operation(kind, op_points[i].copy(), tuple_id=tid))
    return DynamicWorkload(initial=initial, operations=ops,
                           snapshots=snapshots)


# ----------------------------------------------------------------------
# Run results
# ----------------------------------------------------------------------

def save_run_result(result: RunResult, path) -> None:
    """Write a run result as human-diffable JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "kind": "run_result",
        "algorithm": result.algorithm,
        "n_operations": result.n_operations,
        "total_seconds": result.total_seconds,
        "snapshots": [
            {"op_index": s.op_index, "result_size": s.result_size,
             "mrr": s.mrr, "db_size": s.db_size}
            for s in result.snapshots
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_run_result(path) -> RunResult:
    """Reload a run result saved with :func:`save_run_result`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "run_result":
        raise ValueError(f"{path} is not a saved run result")
    snapshots = [SnapshotRecord(**snap) for snap in payload["snapshots"]]
    return RunResult(algorithm=payload["algorithm"],
                     n_operations=payload["n_operations"],
                     total_seconds=payload["total_seconds"],
                     snapshots=snapshots)


def _check(data, expected_kind: str) -> None:
    kind = str(data["kind"]) if "kind" in data else "?"
    if kind != expected_kind:
        raise ValueError(f"file holds a {kind!r}, expected {expected_kind!r}")
    version = int(data["version"]) if "version" in data else -1
    if version > _FORMAT_VERSION:
        raise ValueError(f"file format v{version} is newer than this "
                         f"library (v{_FORMAT_VERSION})")
