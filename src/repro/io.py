"""Persistence: save and load databases, workloads, and run results.

A downstream user of the library needs to freeze an experiment — the
exact database snapshot, the exact operation tape, the measured results
— and replay or share it later. Everything is stored in ``.npz``
(arrays) with a small JSON header, no pickling, so files are portable
and safe to load.

Formats
-------
* **database** — one npz with ``ids`` (intp) and ``points`` (float64);
  reloading preserves tuple ids exactly (including gaps from deletions).
* **workload** — npz with the initial matrix plus parallel arrays of
  operation kind/id/point and the snapshot marks.
* **run result** — JSON (scalars only), suitable for diffing across
  machines.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.bench.harness import RunResult, SnapshotRecord
from repro.data.database import DELETE, INSERT, Database, Operation
from repro.data.workload import DynamicWorkload
from repro.persist.atomic import write_text_atomic, write_via_handle_atomic

_FORMAT_VERSION = 1


class FileFormatError(ValueError):
    """A saved file is corrupt, the wrong kind, or a future version."""


def _load_npz(path, expected_kind: str) -> dict[str, np.ndarray]:
    """Read an npz bundle, mapping every corruption to a typed error.

    Truncated files, binary garbage, bad zip members, and missing
    fields all raise :class:`FileFormatError`; a missing *file* stays
    ``FileNotFoundError`` (absent and corrupt are different failures).
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            _check(path, data, expected_kind)
            return {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError, KeyError) as exc:
        raise FileFormatError(
            f"{path}: not a readable npz bundle: {exc}") from exc
    except ValueError as exc:
        if isinstance(exc, FileFormatError):
            raise
        raise FileFormatError(
            f"{path}: not a readable npz bundle: {exc}") from exc


# ----------------------------------------------------------------------
# Database
# ----------------------------------------------------------------------

def save_database(db: Database, path) -> None:
    """Save the alive tuples of ``db`` (ids + values) to ``path``.

    The write is atomic (tmp + fsync + ``os.replace``): a crash leaves
    either the previous file or the complete new one.
    """
    ids, pts = db.snapshot()
    write_via_handle_atomic(path, lambda h: np.savez_compressed(
        h, version=_FORMAT_VERSION, kind="database",
        ids=ids, points=pts, d=db.d, capacity=db.capacity))


def load_database(path) -> Database:
    """Reload a database saved with :func:`save_database`.

    Tuple ids are preserved: ids missing from the stored set (deleted
    before saving) stay permanently dead in the reloaded instance.
    Corrupt or future-version files raise :class:`FileFormatError`.
    """
    data = _load_npz(path, "database")
    try:
        ids = data["ids"].astype(np.intp)
        pts = data["points"]
        d = int(data["d"])
        capacity = int(data["capacity"])
    except KeyError as exc:
        raise FileFormatError(f"{path}: missing field {exc}") from exc
    db = Database(d=d)
    cursor = 0
    alive = set(int(i) for i in ids)
    row_of = {int(tid): row for row, tid in enumerate(ids)}
    for tid in range(capacity):
        if tid in alive:
            assigned = db.insert(pts[row_of[tid]])
        else:
            # Re-create and immediately kill the id to preserve numbering.
            assigned = db.insert(np.zeros(d))
            db.delete(assigned)
        if assigned != tid:  # pragma: no cover - defensive
            raise RuntimeError(f"id mismatch on reload: {assigned} != {tid}")
        cursor += 1
    return db


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------

def save_workload(workload: DynamicWorkload, path) -> None:
    """Serialize a workload tape (initial matrix + operations)."""
    kinds = np.asarray([1 if op.kind == INSERT else 0
                        for op in workload.operations], dtype=np.int8)
    ids = np.asarray([op.tuple_id if op.tuple_id is not None else -1
                      for op in workload.operations], dtype=np.int64)
    if workload.operations:
        op_points = np.vstack([op.point for op in workload.operations])
    else:
        op_points = np.empty((0, workload.d))
    write_via_handle_atomic(path, lambda h: np.savez_compressed(
        h, version=_FORMAT_VERSION, kind="workload",
        initial=workload.initial, kinds=kinds, ids=ids,
        op_points=op_points,
        snapshots=np.asarray(workload.snapshots, dtype=np.int64)))


def load_workload(path) -> DynamicWorkload:
    """Reload a workload saved with :func:`save_workload`.

    Corrupt or future-version files raise :class:`FileFormatError`.
    """
    data = _load_npz(path, "workload")
    try:
        initial = data["initial"]
        kinds = data["kinds"]
        ids = data["ids"]
        op_points = data["op_points"]
        snapshots = tuple(int(s) for s in data["snapshots"])
    except KeyError as exc:
        raise FileFormatError(f"{path}: missing field {exc}") from exc
    ops = []
    for i in range(kinds.shape[0]):
        kind = INSERT if kinds[i] == 1 else DELETE
        tid = int(ids[i]) if ids[i] >= 0 else None
        ops.append(Operation(kind, op_points[i].copy(), tuple_id=tid))
    return DynamicWorkload(initial=initial, operations=ops,
                           snapshots=snapshots)


# ----------------------------------------------------------------------
# Run results
# ----------------------------------------------------------------------

def save_run_result(result: RunResult, path) -> None:
    """Write a run result as human-diffable JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "kind": "run_result",
        "algorithm": result.algorithm,
        "n_operations": result.n_operations,
        "total_seconds": result.total_seconds,
        "snapshots": [
            {"op_index": s.op_index, "result_size": s.result_size,
             "mrr": s.mrr, "db_size": s.db_size}
            for s in result.snapshots
        ],
    }
    write_text_atomic(path, json.dumps(payload, indent=2))


def load_run_result(path) -> RunResult:
    """Reload a run result saved with :func:`save_run_result`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FileFormatError(f"{path}: not a readable JSON result: "
                              f"{exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "run_result":
        raise FileFormatError(f"{path} is not a saved run result")
    snapshots = [SnapshotRecord(**snap) for snap in payload["snapshots"]]
    return RunResult(algorithm=payload["algorithm"],
                     n_operations=payload["n_operations"],
                     total_seconds=payload["total_seconds"],
                     snapshots=snapshots)


def _check(path, data, expected_kind: str) -> None:
    kind = str(data["kind"]) if "kind" in data else "?"
    if kind != expected_kind:
        raise FileFormatError(
            f"{path}: file holds a {kind!r}, expected {expected_kind!r}")
    version = int(data["version"]) if "version" in data else -1
    if version > _FORMAT_VERSION:
        raise FileFormatError(f"{path}: file format v{version} is newer "
                              f"than this library (v{_FORMAT_VERSION})")
