"""Tenant registry: one supervised session per tenant, with quotas.

Each tenant of the network service owns exactly one
:class:`~repro.service.SessionSupervisor` over one streaming session.
The registry enforces:

* **admission quotas** (:class:`TenantQuota`) at the network edge —
  oversized requests and writes that would exceed the per-tenant
  pending-ops budget are rejected with ``quota_exceeded`` *before*
  touching the supervisor, so one tenant cannot monopolize the
  admission queue (the supervisor's inline-drain backpressure remains
  the second line of defense);
* **an LRU session cap** (``max_tenants``) — opening tenant N+1 evicts
  the least-recently-used tenant: its queue is drained, its session
  checkpointed to ``<checkpoint_root>/<tenant_id>`` (FD-RMS sessions
  only — the recompute baselines have no durable form), and closed.
  The evicted tenant can come back with ``{"resume": true}``, which
  restores from that checkpoint through the verified recovery path
  (any detected fault degrades to a cold start, per PR 7 semantics).

The registry is transport-agnostic and synchronous; the asyncio app
serializes access per tenant with a lock, so no method here awaits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.api.session import BatchValidationError, Session, open_session
from repro.server.protocol import ServiceError, get_field, require_field
from repro.service.chaos import ChaosInjector, parse_chaos
from repro.service.clock import Clock, MonotonicClock
from repro.service.policy import SupervisorConfig
from repro.service.supervisor import SessionSupervisor

__all__ = ["Tenant", "TenantQuota", "TenantRegistry"]

#: Tenant ids must be path- and log-safe (they name checkpoint dirs).
_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits, enforced at the network edge."""

    #: Largest single batch/delete request, in operations.
    max_ops_per_request: int = 4096
    #: Admitted-but-unapplied operations a tenant may have queued; a
    #: write pushing past this is shed with ``quota_exceeded`` (HTTP
    #: 429) instead of growing admission latency for everyone.
    max_pending_ops: int = 65536
    #: Alive tuples + queued inserts; caps per-tenant memory.
    max_tuples: int = 1_000_000

    def to_dict(self) -> dict[str, int]:
        return {"max_ops_per_request": self.max_ops_per_request,
                "max_pending_ops": self.max_pending_ops,
                "max_tuples": self.max_tuples}


class Tenant:
    """One tenant's live state: session + supervisor (+ chaos)."""

    def __init__(self, tenant_id: str, session: Session,
                 supervisor: SessionSupervisor, *,
                 injector: ChaosInjector | None = None,
                 checkpoint_dir: Path | None = None) -> None:
        self.tenant_id = tenant_id
        self.session = session
        self.supervisor = supervisor
        self.injector = injector
        self.checkpoint_dir = checkpoint_dir
        #: Coalescing pump bookkeeping, owned by the asyncio app layer.
        self.lock: Any = None
        self.pump_task: Any = None
        #: Set by evict/close_all. Handlers that awaited ``lock`` while
        #: an evict ran must re-check this before touching the
        #: supervisor — the session behind it is gone.
        self.closed = False
        #: Filled by the registry at open time (e.g. which tenants the
        #: open evicted); echoed in the open response.
        self.opened_info: dict[str, Any] = {}

    def stats(self) -> dict[str, Any]:
        """JSON-ready tenant stats: supervisor counters + engine stats."""
        out: dict[str, Any] = {
            "tenant": self.tenant_id,
            "alive_tuples": len(self.session.db),
            "service": self.supervisor.counters(),
            "session": _jsonify(self.session.stats()),
        }
        if self.injector is not None:
            out["chaos"] = dict(self.injector.counters)
        return out


def _jsonify(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays for json.dumps."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _build_points(payload: Mapping[str, Any]) -> np.ndarray:
    """Initial points from an explicit matrix or a named dataset."""
    if "points" in payload:
        points = get_field(payload, "points", list)
        try:
            matrix = np.asarray(points, dtype=float)
        except (TypeError, ValueError) as exc:
            raise ServiceError("bad_request",
                               f"'points' is not numeric: {exc}") from None
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ServiceError(
                "bad_request",
                f"'points' must be a non-empty 2-D matrix, "
                f"got shape {matrix.shape}")
        return matrix
    if "dataset" in payload:
        from repro.data import make_dataset
        name = get_field(payload, "dataset", str)
        n = require_field(payload, "n", int)
        seed = get_field(payload, "data_seed", int, 0)
        try:
            return make_dataset(name, n=n, seed=seed)
        except (KeyError, ValueError) as exc:
            raise ServiceError("bad_request",
                               f"bad dataset spec: {exc}") from None
    raise ServiceError("bad_request",
                       "open requires either 'points' or 'dataset'+'n'")


class TenantRegistry:
    """All live tenants, LRU-ordered, quota- and cap-enforced."""

    def __init__(self, *, max_tenants: int = 8,
                 quota: TenantQuota | None = None,
                 checkpoint_root: Any = None,
                 clock: Clock | None = None) -> None:
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        self.max_tenants = max_tenants
        self.quota = quota or TenantQuota()
        self.checkpoint_root = (Path(checkpoint_root)
                                if checkpoint_root is not None else None)
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._tenants: "OrderedDict[str, Tenant]" = OrderedDict()
        self.counters: dict[str, int] = {
            "opened": 0, "resumed": 0, "evicted": 0,
            "evict_checkpoints": 0, "closed": 0, "quota_rejections": 0,
        }

    # -- lookup --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def ids(self) -> list[str]:
        """Tenant ids, least-recently-used first."""
        return list(self._tenants)

    def get(self, tenant_id: str) -> Tenant:
        """Fetch a tenant and mark it most-recently-used."""
        tenant = self.peek(tenant_id)
        self._tenants.move_to_end(tenant_id)
        return tenant

    def peek(self, tenant_id: str) -> Tenant:
        """Fetch a tenant *without* touching LRU recency (stats paths)."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise ServiceError(
                "unknown_tenant", f"tenant {tenant_id!r} is not open",
                {"tenant": tenant_id, "open_tenants": len(self._tenants)})
        return tenant

    # -- lifecycle -----------------------------------------------------
    def _checkpoint_dir(self, tenant_id: str) -> Path | None:
        if self.checkpoint_root is None:
            return None
        directory = self.checkpoint_root / tenant_id
        # Defense in depth behind id validation: checkpoint/evict writes
        # must never land outside the configured root, no matter what
        # id slipped through ('.', '..', or a future validation bug).
        root = self.checkpoint_root.resolve()
        if root not in directory.resolve().parents:
            raise ServiceError(
                "bad_request",
                f"tenant id {tenant_id!r} escapes the checkpoint root")
        return directory

    def open(self, tenant_id: str, payload: Mapping[str, Any]) -> Tenant:
        """Open (or resume) one tenant from its ``open`` payload.

        Evicts the least-recently-used tenant first when the registry
        is full — the returned tenant is always registered and MRU.
        """
        if not tenant_id or len(tenant_id) > 64 or \
                not set(tenant_id) <= _ID_CHARS or \
                tenant_id in (".", ".."):
            raise ServiceError(
                "bad_request",
                f"tenant id {tenant_id!r} must be 1-64 characters from "
                f"[A-Za-z0-9._-], excluding the path components "
                f"'.' and '..'")
        if tenant_id in self._tenants:
            raise ServiceError(
                "tenant_exists", f"tenant {tenant_id!r} is already open",
                {"tenant": tenant_id})
        evicted = []
        while len(self._tenants) >= self.max_tenants:
            lru_id = next(iter(self._tenants))
            evicted.append(self.evict(lru_id))
        tenant = self._build_tenant(tenant_id, payload)
        self._tenants[tenant_id] = tenant
        self.counters["opened"] += 1
        tenant.opened_info = {"evicted": [e["tenant"] for e in evicted]}
        return tenant

    def _build_tenant(self, tenant_id: str,
                      payload: Mapping[str, Any]) -> Tenant:
        points = _build_points(payload)
        r = require_field(payload, "r", int)
        k = get_field(payload, "k", int, 1)
        algo = get_field(payload, "algo", str, "fd-rms")
        seed = get_field(payload, "seed", int, 0)
        options: dict[str, Any] = {}
        for key, kind in (("eps", (int, float)), ("m_max", int),
                          ("parallel", int)):
            if key in payload:
                options[key] = get_field(payload, key, kind)
        checkpoint_dir = self._checkpoint_dir(tenant_id)
        if get_field(payload, "resume", bool, False):
            if checkpoint_dir is None:
                raise ServiceError(
                    "unsupported",
                    "resume requested but the server has no "
                    "checkpoint root configured")
            self.counters["resumed"] += 1
            options["snapshot"] = checkpoint_dir
        config_raw = get_field(payload, "config", dict, None)
        try:
            config = SupervisorConfig(**(config_raw or {}))
        except TypeError as exc:
            raise ServiceError("bad_request",
                               f"bad supervisor config: {exc}") from None
        chaos_raw = get_field(payload, "chaos", dict, None)
        injector = None
        transport: Callable[[Sequence[Any]], Any] | None = None
        checkpoint_hook = None
        try:
            session = open_session(points, r, k=k, algo=algo, seed=seed,
                                   **options)
        except Exception as exc:
            raise ServiceError(
                "bad_request",
                f"could not open session: {type(exc).__name__}: {exc}"
            ) from None
        if chaos_raw is not None:
            spec = get_field(chaos_raw, "spec", str, "all")
            chaos_seed = get_field(chaos_raw, "seed", int, 0)
            try:
                chaos_config = parse_chaos(spec, seed=chaos_seed)
            except ValueError as exc:
                _close(session)
                raise ServiceError("bad_request", str(exc)) from None
            injector = ChaosInjector(chaos_config, self._clock)
            transport = injector.transport(session)
            checkpoint_hook = injector.on_checkpoint
        supervisor = SessionSupervisor(
            session, config, clock=self._clock, transport=transport,
            checkpoint_dir=checkpoint_dir, checkpoint_hook=checkpoint_hook)
        return Tenant(tenant_id, session, supervisor, injector=injector,
                      checkpoint_dir=checkpoint_dir)

    def checkpoint(self, tenant_id: str) -> dict[str, Any]:
        """Drain and checkpoint one tenant; returns manifest info."""
        tenant = self.get(tenant_id)
        checkpoint = getattr(tenant.session, "checkpoint", None)
        if tenant.checkpoint_dir is None:
            raise ServiceError(
                "unsupported",
                "the server has no checkpoint root configured")
        if not callable(checkpoint):
            raise ServiceError(
                "unsupported",
                f"tenant {tenant_id!r} runs an algorithm without a "
                f"durable checkpoint form")
        tenant.supervisor.drain()
        manifest = checkpoint(tenant.checkpoint_dir)
        return {"tenant": tenant_id,
                "directory": str(tenant.checkpoint_dir),
                "state_digest": manifest["state_digest"],
                "wal_position": manifest["wal_position"]}

    def evict(self, tenant_id: str, *,
              checkpoint: bool = True) -> dict[str, Any]:
        """Drain, optionally checkpoint, close, and forget one tenant."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise ServiceError(
                "unknown_tenant", f"tenant {tenant_id!r} is not open",
                {"tenant": tenant_id})
        tenant.supervisor.drain()
        info: dict[str, Any] = {"tenant": tenant_id, "checkpointed": False}
        saver = getattr(tenant.session, "checkpoint", None)
        if (checkpoint and tenant.checkpoint_dir is not None
                and callable(saver)):
            try:
                manifest = saver(tenant.checkpoint_dir)
            except Exception as exc:
                # Eviction must always succeed; a failed checkpoint is
                # reported, not fatal (the tenant just cannot resume).
                info["checkpoint_error"] = f"{type(exc).__name__}: {exc}"
            else:
                info["checkpointed"] = True
                info["state_digest"] = manifest["state_digest"]
                self.counters["evict_checkpoints"] += 1
        _close(tenant.session)
        tenant.closed = True
        del self._tenants[tenant_id]
        self.counters["evicted"] += 1
        return info

    def close_all(self) -> None:
        """Drain and close every tenant (server shutdown, no eviction
        checkpointing — shutdown must be fast and never raise)."""
        for tenant_id in list(self._tenants):
            tenant = self._tenants.pop(tenant_id)
            try:
                tenant.supervisor.drain()
            except Exception:
                pass
            _close(tenant.session)
            tenant.closed = True
            self.counters["closed"] += 1

    # -- admission -----------------------------------------------------
    def admit(self, tenant: Tenant,
              ops: Sequence[Any]) -> int:
        """Quota-check and submit one write request; returns ops admitted.

        Order of defenses: per-request size, pending-ops budget, and
        tuple cap are all checked *before* ``submit`` — a rejected
        request never enters the admission queue, so ``quota_exceeded``
        responses are cheap even under overload.
        """
        quota = self.quota
        if len(ops) > quota.max_ops_per_request:
            self.counters["quota_rejections"] += 1
            raise ServiceError(
                "quota_exceeded",
                f"request of {len(ops)} ops exceeds "
                f"max_ops_per_request={quota.max_ops_per_request}",
                {"tenant": tenant.tenant_id, "ops": len(ops),
                 "max_ops_per_request": quota.max_ops_per_request})
        pending = tenant.supervisor.pending_ops
        if pending + len(ops) > quota.max_pending_ops:
            self.counters["quota_rejections"] += 1
            raise ServiceError(
                "quota_exceeded",
                f"tenant {tenant.tenant_id!r} has {pending} pending ops; "
                f"admitting {len(ops)} more would exceed "
                f"max_pending_ops={quota.max_pending_ops}",
                {"tenant": tenant.tenant_id, "pending_ops": pending,
                 "max_pending_ops": quota.max_pending_ops,
                 "retry_after_ms": 50})
        inserts = sum(1 for op in ops
                      if isinstance(op, Mapping)
                      and op.get("kind") == "insert")
        if len(tenant.session.db) + pending + inserts > quota.max_tuples:
            self.counters["quota_rejections"] += 1
            raise ServiceError(
                "quota_exceeded",
                f"tenant {tenant.tenant_id!r} would exceed "
                f"max_tuples={quota.max_tuples}",
                {"tenant": tenant.tenant_id,
                 "alive_tuples": len(tenant.session.db),
                 "max_tuples": quota.max_tuples})
        try:
            return tenant.supervisor.submit(ops)
        except BatchValidationError as exc:
            raise ServiceError(
                "validation_failed", str(exc),
                {"tenant": tenant.tenant_id, "index": exc.index,
                 "reason": exc.reason}) from None

    def stats(self) -> dict[str, Any]:
        """Registry-level stats for ``GET /v1/stats``."""
        return {
            "open_tenants": len(self._tenants),
            "max_tenants": self.max_tenants,
            "lru_order": self.ids(),
            "quota": self.quota.to_dict(),
            "counters": dict(self.counters),
            "checkpoint_root": (str(self.checkpoint_root)
                                if self.checkpoint_root else None),
        }


def _close(session: Session) -> None:
    closer = getattr(session, "close", None)
    if callable(closer):
        try:
            closer()
        except Exception:
            pass
