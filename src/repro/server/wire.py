"""Minimal HTTP/1.1 + WebSocket (RFC 6455) framing over asyncio streams.

The repo's zero-heavy-deps posture rules out aiohttp/uvicorn, and the
service's wire needs are deliberately small: JSON request/response over
keep-alive HTTP, plus one WebSocket endpoint for clients that stream
many small operations (where per-request HTTP parsing would dominate).
This module is that floor — a request parser, a response writer, and a
WebSocket codec — shared by the server (:mod:`repro.server.app`) and
the asyncio load-generator client (:mod:`repro.server.loadgen`).

Scope limits (documented, deliberate):

* HTTP/1.1 only; no chunked transfer encoding (requests carry
  ``Content-Length`` or no body), no TLS, no compression.
* WebSocket: text frames with JSON payloads; client frames must be
  masked (RFC 6455 §5.1), server frames are not; fragmented messages
  are reassembled; ping/close handled, no extensions.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpClient", "HttpError", "HttpRequest", "HttpResponse",
    "WS_OP_CLOSE", "WS_OP_PING", "WS_OP_PONG", "WS_OP_TEXT",
    "WebSocketClient", "read_request", "websocket_accept",
    "write_response", "ws_read_message", "ws_write_close",
    "ws_write_message",
]

_MAX_HEADER_BYTES = 32 * 1024
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

WS_OP_TEXT = 0x1
WS_OP_CLOSE = 0x8
WS_OP_PING = 0x9
WS_OP_PONG = 0xA

_STATUS_REASON = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 101: "Switching Protocols",
}


class HttpError(Exception):
    """Wire-level parse failure; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request. Header names are lower-cased."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not valid JSON: "
                                 f"{exc.msg}") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    """One parsed client-side response."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body) if self.body else {}


async def _read_head(reader: asyncio.StreamReader) -> bytes | None:
    """Read up to the blank line; None on clean EOF before any byte."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    return head


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def read_request(reader: asyncio.StreamReader, *,
                       max_body: int) -> HttpRequest | None:
    """Parse one request; ``None`` on clean connection close.

    Raises :class:`HttpError` on malformed input or a body larger than
    ``max_body`` (the caller answers with the carried status and closes).
    """
    head = await _read_head(reader)
    if head is None:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers = _parse_headers([ln for ln in lines[1:] if ln])
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_raw!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length {length_raw!r}")
    if length > max_body:
        raise HttpError(413, f"request body of {length} bytes exceeds "
                             f"the {max_body} byte limit")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = {key: value for key, value
             in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(method=method, target=target,
                       path=unquote(split.path), query=query,
                       headers=headers, body=body)


async def write_response(writer: asyncio.StreamWriter, status: int,
                         body: bytes | Mapping[str, Any], *,
                         content_type: str = "application/json",
                         keep_alive: bool = True,
                         extra_headers: Mapping[str, str] | None = None
                         ) -> None:
    """Serialize and send one response (mappings are JSON-encoded)."""
    if not isinstance(body, (bytes, bytearray)):
        body = (json.dumps(body, sort_keys=True) + "\n").encode()
    reason = _STATUS_REASON.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(bytes(body))
    await writer.drain()


# ----------------------------------------------------------------------
# WebSocket (RFC 6455)
# ----------------------------------------------------------------------

def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client key (§4.2.2)."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def _ws_encode_frame(opcode: int, payload: bytes, *,
                     mask: bytes | None = None) -> bytes:
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask is not None else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask is not None:
        head += mask
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def _ws_read_frame(reader: asyncio.StreamReader, *,
                         max_len: int) -> tuple[int, bool, bytes]:
    """One raw frame -> ``(opcode, fin, payload)`` (unmasked)."""
    b0, b1 = await reader.readexactly(2)
    fin = bool(b0 & 0x80)
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > max_len:
        raise HttpError(413, f"WebSocket frame of {length} bytes exceeds "
                             f"the {max_len} byte limit")
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length)
    if masked:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, fin, payload


async def ws_read_message(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter, *,
                          max_len: int) -> str | None:
    """Next complete text message; ``None`` on close/EOF.

    Control frames are handled inline: pings are ponged, a close frame
    is echoed and ends the stream. Fragmented messages are reassembled.
    """
    parts: list[bytes] = []
    while True:
        try:
            opcode, fin, payload = await _ws_read_frame(reader,
                                                        max_len=max_len)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        if opcode == WS_OP_CLOSE:
            try:
                writer.write(_ws_encode_frame(WS_OP_CLOSE, payload[:2]))
                await writer.drain()
            except (ConnectionResetError, RuntimeError):
                pass
            return None
        if opcode == WS_OP_PING:
            writer.write(_ws_encode_frame(WS_OP_PONG, payload))
            await writer.drain()
            continue
        if opcode == WS_OP_PONG:
            continue
        parts.append(payload)
        if sum(len(p) for p in parts) > max_len:
            raise HttpError(413, "fragmented WebSocket message too large")
        if fin:
            return b"".join(parts).decode("utf-8")


async def ws_write_close(writer: asyncio.StreamWriter, *,
                         code: int = 1000, reason: str = "") -> None:
    """Send one close frame; never raises (the peer may be gone).

    Control-frame payloads are capped at 125 bytes (RFC 6455 §5.5), so
    the reason is truncated to fit beside the 2-byte status code.
    """
    payload = struct.pack(">H", code) + reason.encode("utf-8")[:123]
    try:
        writer.write(_ws_encode_frame(WS_OP_CLOSE, payload))
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError, RuntimeError):
        pass


async def ws_write_message(writer: asyncio.StreamWriter, text: str, *,
                           mask: bytes | None = None) -> None:
    """Send one (unfragmented) text message."""
    writer.write(_ws_encode_frame(WS_OP_TEXT, text.encode("utf-8"),
                                  mask=mask))
    await writer.drain()


# ----------------------------------------------------------------------
# Clients (used by the load generator and tests)
# ----------------------------------------------------------------------

@dataclass
class HttpClient:
    """One keep-alive JSON/HTTP connection to the server."""

    host: str
    port: int
    _reader: asyncio.StreamReader | None = field(default=None, repr=False)
    _writer: asyncio.StreamWriter | None = field(default=None, repr=False)

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def request(self, method: str, target: str,
                      payload: Mapping[str, Any] | None = None
                      ) -> HttpResponse:
        """One round trip, reconnecting once if the connection died."""
        if self._writer is None or self._writer.is_closing():
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        head = (f"{method} {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n")
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = (await self._reader.readline()).decode("latin-1")
        parts = status_line.split(" ", 2)
        if len(parts) < 2:
            raise HttpError(502, f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = (await self._reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        resp_body = await self._reader.readexactly(length) if length else b""
        return HttpResponse(status=status, headers=headers, body=resp_body)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None


class WebSocketClient:
    """One WebSocket connection speaking the server's JSON messages."""

    def __init__(self, host: str, port: int, *,
                 path: str = "/v1/ws", max_len: int = 1 << 24) -> None:
        self.host = host
        self.port = port
        self.path = path
        self.max_len = max_len
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._mask_counter = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        # A fixed client key is fine: the handshake digest only proves
        # the peer speaks WebSocket, it is not a security boundary.
        key = base64.b64encode(b"repro-loadgen-16").decode("latin-1")
        self._writer.write(
            (f"GET {self.path} HTTP/1.1\r\n"
             f"Host: {self.host}:{self.port}\r\n"
             "Upgrade: websocket\r\nConnection: Upgrade\r\n"
             f"Sec-WebSocket-Key: {key}\r\n"
             "Sec-WebSocket-Version: 13\r\n\r\n").encode("latin-1"))
        await self._writer.drain()
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise HttpError(502, f"WebSocket handshake refused: "
                                 f"{status_line!r}")
        accept = websocket_accept(key)
        if accept.encode("latin-1") not in head:
            raise HttpError(502, "WebSocket handshake key mismatch")

    def _next_mask(self) -> bytes:
        # Deterministic masks keep runs replayable; masking exists to
        # defeat proxy cache poisoning, not to be unpredictable here.
        self._mask_counter += 1
        return struct.pack(">I", self._mask_counter & 0xFFFFFFFF)

    async def round_trip(self, message: Mapping[str, Any]
                         ) -> dict[str, Any]:
        """Send one JSON message and await its JSON reply."""
        assert self._reader is not None and self._writer is not None
        await ws_write_message(self._writer, json.dumps(message),
                               mask=self._next_mask())
        reply = await ws_read_message(self._reader, self._writer,
                                      max_len=self.max_len)
        if reply is None:
            raise HttpError(502, "WebSocket closed mid-request")
        out = json.loads(reply)
        if not isinstance(out, dict):
            raise HttpError(502, "WebSocket reply is not a JSON object")
        return out

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.write(_ws_encode_frame(
                    WS_OP_CLOSE, b"", mask=self._next_mask()))
                await self._writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
