"""The asyncio multi-tenant service: HTTP + WebSocket over supervisors.

:class:`ReproServer` is the network edge of the supervised session
runtime (docs/SERVICE.md is the operator-facing reference):

* every tenant maps to one :class:`~repro.service.SessionSupervisor`
  (see :mod:`repro.server.tenants`); a per-tenant ``asyncio.Lock``
  serializes supervisor access, so the synchronous service layer needs
  no locking of its own;
* writes are admitted and then applied by a background *pump task*
  that yields to the event loop between waves — consecutive requests
  land in the admission queue while a wave is running and get coalesced
  into the next ``apply_batch`` wave (exact-parity semantics make the
  coalescing correctness-free, per docs/ROBUSTNESS.md);
* reads degrade explicitly: ``fresh=1`` drains and serves the exact
  current result (with its ``result_digest``); a deadline-bounded read
  rides the supervisor's ``serve_reads`` shedding path and may return
  a ``stale`` view with its ``lag_ops`` marked;
* both transports speak the same verbs through the same handlers, and
  every failure is a typed :class:`~repro.server.protocol.ServiceError`
  envelope.

The server is single-process, single-loop: true CPU parallelism lives
below, in the engine's shared-memory backend (PR 8), not in the network
layer.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping

from repro.server.protocol import (
    ServiceError,
    error_envelope,
    get_field,
    require_field,
)
from repro.server.tenants import TenantQuota, TenantRegistry
from repro.server.wire import (
    HttpError,
    HttpRequest,
    read_request,
    websocket_accept,
    write_response,
    ws_read_message,
    ws_write_close,
    ws_write_message,
)
from repro.service.supervisor import result_digest

__all__ = ["ReproServer"]

#: Effectively-infinite read deadline used for ``fresh=1`` reads after
#: a drain (the queue is empty, so the read can never shed).
_FRESH_DEADLINE_S = 1e9

_TENANT_VERBS = frozenset(
    {"open", "batch", "delete", "result", "stats", "checkpoint"})


class ReproServer:
    """One multi-tenant FD-RMS service bound to a host/port."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8642,
                 registry: TenantRegistry | None = None,
                 max_tenants: int = 8,
                 quota: TenantQuota | None = None,
                 checkpoint_root: Any = None,
                 max_body_bytes: int = 16 * 1024 * 1024) -> None:
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else TenantRegistry(
            max_tenants=max_tenants, quota=quota,
            checkpoint_root=checkpoint_root)
        self.max_body_bytes = max_body_bytes
        self.counters: dict[str, int] = {
            "http_requests": 0, "ws_connections": 0, "ws_messages": 0,
            "request_errors": 0,
        }
        self._server: asyncio.base_events.Server | None = None
        self._closing = False
        self._pump_tasks: set[asyncio.Task[None]] = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (useful with ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, close sessions."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._pump_tasks):
            task.cancel()
        if self._pump_tasks:
            await asyncio.gather(*self._pump_tasks, return_exceptions=True)
        self.registry.close_all()

    # -- connection handling -------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes)
                except HttpError as exc:
                    code = ("payload_too_large" if exc.status == 413
                            else "bad_request")
                    await write_response(
                        writer, exc.status,
                        error_envelope(code, str(exc)), keep_alive=False)
                    return
                if request is None:
                    return
                if self._is_ws_upgrade(request):
                    await self._handle_ws(request, reader, writer)
                    return
                self.counters["http_requests"] += 1
                status, payload = await self._dispatch(request)
                if status >= 400:
                    self.counters["request_errors"] += 1
                await write_response(writer, status, payload,
                                     keep_alive=request.keep_alive)
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError here means loop teardown caught us
                # mid-close; the transport is going away either way,
                # and re-raising would just log noise per connection.
                pass

    async def _dispatch(self, request: HttpRequest
                        ) -> tuple[int, dict[str, Any]]:
        """Route one HTTP request; never raises."""
        try:
            payload = request.json()
            if not isinstance(payload, dict):
                raise ServiceError("bad_request",
                                   "request body must be a JSON object")
            return 200, await self._route_http(request, payload)
        except ServiceError as exc:
            return exc.http_status, exc.envelope()
        except HttpError as exc:
            return exc.status, error_envelope("bad_request", str(exc))
        except Exception as exc:  # handler bug: typed 500, no traceback
            return 500, error_envelope(
                "internal", "unexpected server error",
                {"type": type(exc).__name__, "message": str(exc)})

    async def _route_http(self, request: HttpRequest,
                          payload: dict[str, Any]) -> dict[str, Any]:
        method, path = request.method, request.path.rstrip("/")
        if self._closing:
            raise ServiceError("shutting_down", "server is draining")
        if path == "/healthz":
            self._require_method(method, "GET")
            return {"ok": True, "open_tenants": len(self.registry)}
        if path == "/v1/stats":
            self._require_method(method, "GET")
            return self._server_stats()
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "tenants":
            if len(parts) == 3:
                self._require_method(method, "DELETE")
                checkpoint = request.query.get("checkpoint", "1") != "0"
                return await self._evict(parts[2], checkpoint=checkpoint)
            if len(parts) == 4 and parts[3] in _TENANT_VERBS:
                verb = parts[3]
                if verb in ("result", "stats"):
                    self._require_method(method, "GET")
                else:
                    self._require_method(method, "POST")
                if verb == "result":
                    fresh = request.query.get("fresh", "0") == "1"
                    deadline_ms = request.query.get("deadline_ms")
                    try:
                        deadline = (float(deadline_ms)
                                    if deadline_ms is not None else None)
                    except ValueError:
                        raise ServiceError(
                            "bad_request",
                            f"bad deadline_ms {deadline_ms!r}") from None
                    return await self._result(parts[2], fresh=fresh,
                                              deadline_ms=deadline)
                return await self._tenant_verb(verb, parts[2], payload)
        raise ServiceError("not_found", f"no route for {request.path!r}",
                           {"method": method, "path": request.path})

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise ServiceError("method_not_allowed",
                               f"use {expected}, not {method}")

    # -- WebSocket transport -------------------------------------------
    @staticmethod
    def _is_ws_upgrade(request: HttpRequest) -> bool:
        return (request.path.rstrip("/") == "/v1/ws"
                and "websocket" in
                request.headers.get("upgrade", "").lower())

    async def _handle_ws(self, request: HttpRequest,
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        key = request.headers.get("sec-websocket-key")
        if not key:
            await write_response(
                writer, 400,
                error_envelope("bad_request",
                               "missing Sec-WebSocket-Key header"),
                keep_alive=False)
            return
        writer.write(
            ("HTTP/1.1 101 Switching Protocols\r\n"
             "Upgrade: websocket\r\nConnection: Upgrade\r\n"
             f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n"
             ).encode("latin-1"))
        await writer.drain()
        self.counters["ws_connections"] += 1
        while True:
            try:
                message = await ws_read_message(
                    reader, writer, max_len=self.max_body_bytes)
            except HttpError as exc:
                # Oversized frame/message: end the stream with a proper
                # close frame (1009 Message Too Big) instead of dropping
                # the TCP connection and logging an unhandled error.
                self.counters["request_errors"] += 1
                await ws_write_close(writer, code=1009, reason=str(exc))
                return
            if message is None:
                return
            self.counters["ws_messages"] += 1
            reply = await self._dispatch_ws(message)
            await ws_write_message(writer, json.dumps(reply,
                                                      sort_keys=True))

    async def _dispatch_ws(self, message: str) -> dict[str, Any]:
        """One WS message -> one ``{"rid", "ok", ...}`` reply."""
        rid: Any = None
        try:
            try:
                obj = json.loads(message)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    "bad_request",
                    f"message is not valid JSON: {exc.msg}") from None
            if not isinstance(obj, dict):
                raise ServiceError("bad_request",
                                   "message must be a JSON object")
            rid = obj.get("rid")
            if self._closing:
                raise ServiceError("shutting_down", "server is draining")
            verb = require_field(obj, "verb", str)
            payload = get_field(obj, "payload", dict, None) or {}
            data = await self._ws_verb(verb, obj, payload)
            return {"rid": rid, "ok": True, "data": data}
        except ServiceError as exc:
            return {"rid": rid, "ok": False,
                    "error": exc.envelope()["error"]}
        except Exception as exc:
            return {"rid": rid, "ok": False,
                    "error": error_envelope(
                        "internal", "unexpected server error",
                        {"type": type(exc).__name__,
                         "message": str(exc)})["error"]}

    async def _ws_verb(self, verb: str, obj: Mapping[str, Any],
                       payload: dict[str, Any]) -> dict[str, Any]:
        if verb == "server_stats":
            return self._server_stats()
        tenant_id = require_field(obj, "tenant", str)
        if verb == "result":
            return await self._result(
                tenant_id,
                fresh=bool(get_field(payload, "fresh", bool, False)),
                deadline_ms=get_field(payload, "deadline_ms",
                                      (int, float), None))
        if verb == "close":
            return await self._evict(
                tenant_id,
                checkpoint=bool(get_field(payload, "checkpoint", bool,
                                          True)))
        if verb in _TENANT_VERBS and verb != "result":
            return await self._tenant_verb(verb, tenant_id, payload)
        raise ServiceError("not_found", f"unknown verb {verb!r}",
                           {"verb": verb})

    # -- shared verb handlers ------------------------------------------
    @staticmethod
    def _require_live(tenant: Any) -> None:
        """Re-check a tenant after acquiring its lock.

        Registry lookups happen before ``await tenant.lock``; a
        concurrent evict (DELETE or LRU eviction by another open) may
        close the session while this handler waits for the lock. Acting
        on the closed session would drop admitted ops or surface as a
        500 — answer ``unknown_tenant`` instead, exactly as if the
        request had arrived after the evict.
        """
        if tenant.closed:
            raise ServiceError(
                "unknown_tenant",
                f"tenant {tenant.tenant_id!r} was evicted",
                {"tenant": tenant.tenant_id})

    async def _tenant_verb(self, verb: str, tenant_id: str,
                           payload: dict[str, Any]) -> dict[str, Any]:
        if verb == "open":
            return await self._open(tenant_id, payload)
        if verb == "batch":
            ops = require_field(payload, "ops", list)
            return await self._write(tenant_id, ops, payload)
        if verb == "delete":
            ids = require_field(payload, "ids", list)
            ops = [{"kind": "delete", "id": i} for i in ids]
            return await self._write(tenant_id, ops, payload)
        if verb == "stats":
            return await self._tenant_stats(tenant_id)
        if verb == "checkpoint":
            return await self._checkpoint(tenant_id)
        raise ServiceError("not_found", f"unknown verb {verb!r}")

    async def _open(self, tenant_id: str,
                    payload: dict[str, Any]) -> dict[str, Any]:
        tenant = self.registry.open(tenant_id, payload)
        tenant.lock = asyncio.Lock()
        out: dict[str, Any] = {
            "tenant": tenant_id,
            "alive_tuples": len(tenant.session.db),
            "d": tenant.session.db.d,
        }
        out.update(tenant.opened_info)
        recovery = getattr(tenant.session, "recovery", None)
        if recovery is not None:
            out["recovery"] = {
                "mode": recovery.get("mode"),
                "cold_starts": recovery.get("cold_starts"),
            }
        return out

    async def _write(self, tenant_id: str, ops: list[Any],
                     payload: Mapping[str, Any]) -> dict[str, Any]:
        mode = get_field(payload, "mode", str, "coalesce")
        if mode not in ("coalesce", "drain"):
            raise ServiceError(
                "bad_request",
                f"mode must be 'coalesce' or 'drain', got {mode!r}")
        tenant = self.registry.get(tenant_id)
        async with tenant.lock:
            self._require_live(tenant)
            admitted = self.registry.admit(tenant, ops)
            if mode == "drain":
                tenant.supervisor.drain()
        if mode == "coalesce":
            self._ensure_pump(tenant)
        return {"tenant": tenant_id, "admitted": admitted,
                "pending": tenant.supervisor.pending_ops, "mode": mode}

    def _ensure_pump(self, tenant: Any) -> None:
        """Start the background pump for a tenant unless one is live."""
        if tenant.pump_task is not None and not tenant.pump_task.done():
            return
        task = asyncio.get_running_loop().create_task(
            self._pump_loop(tenant))
        tenant.pump_task = task
        self._pump_tasks.add(task)
        task.add_done_callback(self._pump_tasks.discard)

    async def _pump_loop(self, tenant: Any) -> None:
        """Drain a tenant's queue one pump at a time, yielding between
        pumps so concurrent submits coalesce into the next wave."""
        while not self._closing:
            async with tenant.lock:
                if tenant.closed or tenant.supervisor.pending_ops == 0:
                    return
                tenant.supervisor.pump()
            # The yield point: requests admitted while the wave above
            # was applying join the queue and ride the next wave.
            await asyncio.sleep(0)

    async def _result(self, tenant_id: str, *, fresh: bool,
                      deadline_ms: float | None) -> dict[str, Any]:
        tenant = self.registry.get(tenant_id)
        async with tenant.lock:
            self._require_live(tenant)
            if fresh:
                tenant.supervisor.drain()
                view = tenant.supervisor.read(
                    deadline_s=_FRESH_DEADLINE_S, tag=tenant_id)
            else:
                deadline_s = (deadline_ms / 1e3
                              if deadline_ms is not None else None)
                view = tenant.supervisor.read(deadline_s=deadline_s,
                                              tag=tenant_id)
            out: dict[str, Any] = {
                "tenant": tenant_id,
                "ids": [int(i) for i in view.ids],
                "stale": view.stale,
                "lag_ops": view.lag_ops,
            }
            if not view.stale:
                out["result_digest"] = result_digest(tenant.session)
        return out

    async def _tenant_stats(self, tenant_id: str) -> dict[str, Any]:
        tenant = self.registry.get(tenant_id)
        async with tenant.lock:
            self._require_live(tenant)
            return tenant.stats()

    async def _checkpoint(self, tenant_id: str) -> dict[str, Any]:
        tenant = self.registry.get(tenant_id)
        async with tenant.lock:
            self._require_live(tenant)
            return self.registry.checkpoint(tenant_id)

    async def _evict(self, tenant_id: str, *,
                     checkpoint: bool) -> dict[str, Any]:
        tenant = self.registry.get(tenant_id)
        async with tenant.lock:
            self._require_live(tenant)
            return self.registry.evict(tenant_id, checkpoint=checkpoint)

    def _server_stats(self) -> dict[str, Any]:
        tenants = {}
        for tenant_id in self.registry.ids():
            tenant = self.registry.peek(tenant_id)
            tenants[tenant_id] = {
                "pending_ops": tenant.supervisor.pending_ops,
                "alive_tuples": len(tenant.session.db),
            }
        return {"server": dict(self.counters),
                "registry": self.registry.stats(),
                "tenants": tenants}
