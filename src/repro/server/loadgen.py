"""Asyncio load generator + digest-parity checker for ``repro serve``.

Drives N concurrent tenants against a running :class:`ReproServer`,
each replaying one compiled scenario trace (per-tenant seeds, so the
tenants' streams — and therefore their digests — are distinct):

* writes go through the coalescing path (``mode: "coalesce"``), so
  concurrent tenants genuinely interleave on the server and the
  admission layer gets to merge consecutive requests into waves;
* every ``read_every``-th slice issues a deadline-bounded read and
  tallies fresh/stale serves and the maximum observed ``lag_ops``;
* at end of stream the tenant asks for ``result?fresh=1`` and compares
  the served ``result_digest`` against an *inline* replay of the same
  trace through a plain :func:`~repro.api.session.open_session` — the
  machine-checked proof that the network edge (admission, coalescing,
  quotas, concurrency) never changed what the engine computed.

Tenants alternate transports (HTTP keep-alive, WebSocket) so both wire
paths face concurrent load. The CI ``serve-smoke`` job runs this via
``repro serve-load`` and gates on ``parity_ok`` plus the p99 admission
SLO.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Mapping

from repro.data.database import INSERT, Operation
from repro.server.wire import HttpClient, HttpError, WebSocketClient

__all__ = ["inline_digest", "run_load", "wait_ready"]


def _wire_ops(ops: list[Operation]) -> list[dict[str, Any]]:
    """Serialize trace operations to the wire schema.

    ``float(x)`` round-trips every float64 exactly through JSON
    (repr-based encoding), so the server reconstructs bit-identical
    points and digest parity is meaningful.
    """
    out: list[dict[str, Any]] = []
    for op in ops:
        if op.kind == INSERT:
            out.append({"kind": "insert",
                        "point": [float(x) for x in op.point]})
        else:
            out.append({"kind": "delete", "id": int(op.tuple_id)})
    return out


def inline_digest(trace: Any, *, r: int, k: int = 1, seed: int = 0,
                  eps: float = 0.1, m_max: int = 128) -> str:
    """The reference digest: a plain in-process replay of one trace."""
    from repro.api.session import open_session
    from repro.scenarios.replay import batch_slices
    from repro.service.supervisor import result_digest

    workload = trace.workload
    session = open_session(workload.initial, r, k=k, algo="fd-rms",
                           seed=seed, eps=eps, m_max=m_max)
    try:
        for start, stop in batch_slices(trace):
            session.apply_batch(list(workload.operations[start:stop]))
        return result_digest(session)
    finally:
        session.close()


class _Transport:
    """One tenant's connection: the same five verbs over HTTP or WS."""

    def __init__(self, host: str, port: int, kind: str) -> None:
        self.kind = kind
        self._http = HttpClient(host, port)
        self._ws = WebSocketClient(host, port) if kind == "ws" else None
        self._rid = 0

    async def connect(self) -> None:
        if self._ws is not None:
            await self._ws.connect()

    async def call(self, verb: str, tenant: str,
                   payload: Mapping[str, Any] | None = None,
                   query: str = "") -> dict[str, Any]:
        """One verb round trip; raises HttpError on an error envelope."""
        if self._ws is not None:
            self._rid += 1
            reply = await self._ws.round_trip(
                {"rid": self._rid, "verb": verb, "tenant": tenant,
                 "payload": dict(payload or {})})
            if not reply.get("ok"):
                error = reply.get("error", {})
                raise HttpError(500, f"{error.get('code')}: "
                                     f"{error.get('message')}")
            data = reply.get("data")
            return data if isinstance(data, dict) else {}
        if verb == "result":
            resp = await self._http.request(
                "GET", f"/v1/tenants/{tenant}/result{query}")
        elif verb == "stats":
            resp = await self._http.request(
                "GET", f"/v1/tenants/{tenant}/stats")
        elif verb == "close":
            resp = await self._http.request(
                "DELETE", f"/v1/tenants/{tenant}{query}")
        else:
            resp = await self._http.request(
                "POST", f"/v1/tenants/{tenant}/{verb}",
                dict(payload or {}))
        body = resp.json()
        if resp.status >= 400:
            error = body.get("error", {}) if isinstance(body, dict) else {}
            raise HttpError(resp.status, f"{error.get('code')}: "
                                         f"{error.get('message')}")
        return body if isinstance(body, dict) else {}

    async def close(self) -> None:
        if self._ws is not None:
            await self._ws.close()
        await self._http.close()


def _ws_result_payload(fresh: bool, deadline_ms: float | None
                       ) -> dict[str, Any]:
    payload: dict[str, Any] = {"fresh": fresh}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


async def _drive_tenant(host: str, port: int, tenant_id: str, trace: Any,
                        *, r: int, k: int, seed: int, eps: float,
                        m_max: int, transport: str, read_every: int,
                        deadline_ms: float,
                        chaos: Mapping[str, Any] | None = None,
                        config: Mapping[str, Any] | None = None
                        ) -> dict[str, Any]:
    from repro.scenarios.replay import batch_slices

    conn = _Transport(host, port, transport)
    await conn.connect()
    workload = trace.workload
    tally = {"requests": 0, "ops": 0, "stale_reads": 0, "fresh_reads": 0,
             "max_lag_ops": 0, "coalesced_pending_max": 0}
    opened = False
    try:
        open_payload: dict[str, Any] = {
            "points": [[float(x) for x in row]
                       for row in workload.initial],
            "r": r, "k": k, "seed": seed, "eps": eps, "m_max": m_max,
        }
        if chaos is not None:
            open_payload["chaos"] = dict(chaos)
        if config is not None:
            open_payload["config"] = dict(config)
        try:
            await conn.call("open", tenant_id, open_payload)
        except HttpError as exc:
            # A standing server may still hold this tenant from an
            # earlier (crashed) run: evict the leftover and retry once.
            if "tenant_exists" not in str(exc):
                raise
            await conn.call("close", tenant_id, {"checkpoint": False},
                            query="?checkpoint=0")
            await conn.call("open", tenant_id, open_payload)
        opened = True
        slices = 0
        for start, stop in batch_slices(trace):
            ops = _wire_ops(list(workload.operations[start:stop]))
            ack = await conn.call("batch", tenant_id, {"ops": ops})
            tally["requests"] += 1
            tally["ops"] += int(ack.get("admitted", 0))
            tally["coalesced_pending_max"] = max(
                tally["coalesced_pending_max"], int(ack.get("pending", 0)))
            slices += 1
            if read_every > 0 and slices % read_every == 0:
                view = await conn.call(
                    "result", tenant_id,
                    _ws_result_payload(False, deadline_ms),
                    query=f"?deadline_ms={deadline_ms}")
                tally["requests"] += 1
                if view.get("stale"):
                    tally["stale_reads"] += 1
                    tally["max_lag_ops"] = max(tally["max_lag_ops"],
                                               int(view.get("lag_ops", 0)))
                else:
                    tally["fresh_reads"] += 1
        final = await conn.call("result", tenant_id,
                                _ws_result_payload(True, None),
                                query="?fresh=1")
        stats = await conn.call("stats", tenant_id)
        service = stats.get("service", {})
        row = {
            "tenant": tenant_id,
            "transport": transport,
            **tally,
            "result_size": len(final.get("ids", [])),
            "served_digest": final.get("result_digest"),
            "admission_ms": service.get("admission_latency_ms", {}),
            "waves": service.get("waves"),
            "backpressure_events": service.get("backpressure_events"),
        }
        if "chaos" in stats:
            # Carried in the row because the tenant is evicted below —
            # the registry entry is gone by the time callers look.
            row["chaos"] = stats["chaos"]
        return row
    finally:
        # Leave the server as we found it: a standing server must
        # accept a second serve-load run without tenant_exists errors.
        if opened:
            try:
                await conn.call("close", tenant_id, {"checkpoint": False},
                                query="?checkpoint=0")
            except (HttpError, OSError, asyncio.IncompleteReadError):
                pass
        await conn.close()


async def wait_ready(host: str, port: int, *,
                     timeout_s: float = 20.0) -> None:
    """Poll ``/healthz`` until the server answers (CI boot race)."""
    deadline = time.perf_counter() + timeout_s
    last_error: Exception | None = None
    while time.perf_counter() < deadline:
        client = HttpClient(host, port)
        try:
            resp = await client.request("GET", "/healthz")
            if resp.status == 200:
                return
        except (OSError, HttpError, asyncio.IncompleteReadError) as exc:
            last_error = exc
        finally:
            await client.close()
        await asyncio.sleep(0.1)
    raise TimeoutError(f"server at {host}:{port} not ready after "
                       f"{timeout_s}s: {last_error}")


async def run_load(host: str, port: int, scenario_name: str, *,
                   tenants: int = 2, n: int | None = None, seed: int = 0,
                   r: int = 10, k: int = 1, eps: float = 0.1,
                   m_max: int = 128, read_every: int = 4,
                   deadline_ms: float = 2.0,
                   chaos_tenant: int | None = None,
                   chaos_spec: str = "all", chaos_seed: int = 1,
                   check_parity: bool = True) -> dict[str, Any]:
    """Drive ``tenants`` concurrent tenants; returns the summary dict.

    Each tenant replays the scenario compiled with ``seed + index``;
    when ``check_parity`` is set, each served final digest is compared
    against the tenant's inline reference replay. ``chaos_tenant``
    (index) opens that one tenant with a server-side chaos injector —
    the isolation claim is that the *other* tenants' parity still
    holds.
    """
    from repro.scenarios import get_scenario
    from repro.scenarios.replay import floor_r

    scenario = get_scenario(scenario_name)
    traces = [scenario.compile(seed=seed + i, n=n)
              for i in range(tenants)]
    r_eff = floor_r(r, traces[0].d)
    started = time.perf_counter()
    jobs = []
    for i, trace in enumerate(traces):
        chaos = None
        if chaos_tenant is not None and i == chaos_tenant:
            chaos = {"spec": chaos_spec, "seed": chaos_seed}
        jobs.append(_drive_tenant(
            host, port, f"tenant{i}", trace, r=r_eff, k=k,
            seed=seed + i, eps=eps, m_max=m_max,
            transport="ws" if i % 2 else "http",
            read_every=read_every, deadline_ms=deadline_ms, chaos=chaos))
    per_tenant = list(await asyncio.gather(*jobs))
    wall_s = time.perf_counter() - started
    stats_client = HttpClient(host, port)
    try:
        server_stats = (await stats_client.request(
            "GET", "/v1/stats")).json()
    finally:
        await stats_client.close()
    parity_ok = True
    for i, row in enumerate(per_tenant):
        if check_parity:
            reference = inline_digest(traces[i], r=r_eff, k=k,
                                      seed=seed + i, eps=eps, m_max=m_max)
            row["inline_digest"] = reference
            row["parity_ok"] = row["served_digest"] == reference
            parity_ok = parity_ok and row["parity_ok"]
    p99 = max((float(row.get("admission_ms", {}).get("p99", 0.0))
               for row in per_tenant), default=0.0)
    return {
        "scenario": scenario.name,
        "tenants": tenants,
        "n": n if n is not None else scenario.n,
        "seed": seed,
        "r": r_eff, "k": k, "eps": eps, "m_max": m_max,
        "wall_seconds": round(wall_s, 3),
        "parity_checked": check_parity,
        "parity_ok": parity_ok if check_parity else None,
        "admission_p99_ms": p99,
        "per_tenant": per_tenant,
        "server": server_stats,
    }
