"""Multi-tenant network service over the supervised session runtime.

The network edge of the ROADMAP's "millions of users" direction: a
stdlib-asyncio HTTP + WebSocket front-end (``repro serve``) where every
tenant maps to one :class:`~repro.service.SessionSupervisor` and the
admission layer coalesces incoming operations into ``apply_batch``
waves. Layers:

* :mod:`~repro.server.wire` — minimal HTTP/1.1 + RFC 6455 WebSocket
  framing over asyncio streams (zero heavy deps), plus the matching
  clients;
* :mod:`~repro.server.protocol` — the JSON wire schema: typed error
  envelopes and field validation helpers;
* :mod:`~repro.server.tenants` — tenant registry with per-tenant
  quotas, LRU session eviction (checkpoint-on-evict / resume), and
  optional per-tenant chaos injection;
* :mod:`~repro.server.app` — :class:`ReproServer`: routing, per-tenant
  locking, background coalescing pumps, stale-read degradation;
* :mod:`~repro.server.loadgen` — the asyncio load generator behind
  ``repro serve-load`` and the CI ``serve-smoke`` digest-parity gate.

docs/SERVICE.md is the wire-protocol reference and operations runbook.
"""

from repro.server.app import ReproServer
from repro.server.protocol import ERROR_STATUS, ServiceError
from repro.server.tenants import Tenant, TenantQuota, TenantRegistry

__all__ = [
    "ERROR_STATUS",
    "ReproServer",
    "ServiceError",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
]
