"""The JSON wire schema of the multi-tenant service: errors + payloads.

Every response body on the wire is JSON. Failures use one typed error
envelope::

    {"error": {"code": "<symbolic code>", "message": "<one line>",
               "detail": {...}}}

``code`` is the machine-readable contract (docs/SERVICE.md tabulates
every code with its HTTP status); ``message`` is human-oriented and may
change; ``detail`` carries structured context (offending index, quota
numbers, ...) and may be absent.

:class:`ServiceError` is the one exception type request handlers raise:
the transport layer (HTTP or WebSocket) maps it to the envelope and the
right status code, so handler code never deals with status codes
directly. Anything *else* escaping a handler is a bug and surfaces as
``internal`` / 500 — with the exception type but not the traceback on
the wire.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["ERROR_STATUS", "ServiceError", "error_envelope",
           "get_field", "require_field"]

#: Symbolic error code -> HTTP status. The WebSocket transport carries
#: the code only (there is no status line on a message), so codes —
#: not statuses — are the portable contract.
ERROR_STATUS: dict[str, int] = {
    "bad_request": 400,          # malformed JSON, wrong types, bad query
    "validation_failed": 400,    # batch rejected by validate_batch
    "not_found": 404,            # unknown route
    "unknown_tenant": 404,       # tenant id not registered
    "method_not_allowed": 405,   # route exists, verb does not
    "tenant_exists": 409,        # open of an already-open tenant
    "unsupported": 409,          # e.g. checkpoint on a non-durable algo
    "payload_too_large": 413,    # request body over the wire limit
    "quota_exceeded": 429,       # per-tenant admission quota hit
    "internal": 500,             # handler bug; detail carries the type
    "shutting_down": 503,        # server is draining
}


class ServiceError(Exception):
    """A typed, wire-mappable request failure.

    Parameters
    ----------
    code : str
        One of :data:`ERROR_STATUS`. Unknown codes map to 500 rather
        than raising — an error path must never error.
    message : str
        One human-readable line.
    detail : mapping, optional
        JSON-ready structured context.
    """

    def __init__(self, code: str, message: str,
                 detail: Mapping[str, Any] | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = dict(detail) if detail is not None else None

    @property
    def http_status(self) -> int:
        return ERROR_STATUS.get(self.code, 500)

    def envelope(self) -> dict[str, Any]:
        return error_envelope(self.code, self.message, self.detail)


def error_envelope(code: str, message: str,
                   detail: Mapping[str, Any] | None = None
                   ) -> dict[str, Any]:
    """The one error body shape both transports emit."""
    error: dict[str, Any] = {"code": code, "message": message}
    if detail:
        error["detail"] = dict(detail)
    return {"error": error}


def require_field(payload: Mapping[str, Any], key: str,
                  kind: type | tuple[type, ...] | None = None) -> Any:
    """Fetch a required JSON field, raising ``bad_request`` when absent
    or of the wrong JSON type."""
    if key not in payload:
        raise ServiceError("bad_request", f"missing required field {key!r}")
    return get_field(payload, key, kind)


def get_field(payload: Mapping[str, Any], key: str,
              kind: type | tuple[type, ...] | None = None,
              default: Any = None) -> Any:
    """Fetch an optional JSON field with a JSON-type check.

    ``bool`` is rejected where an int is expected (it is an int
    subclass in Python but not in JSON semantics).
    """
    value = payload.get(key, default)
    if value is default and key not in payload:
        return default
    if kind is not None:
        bad_bool = (isinstance(value, bool)
                    and kind in (int, float, (int, float)))
        if bad_bool or not isinstance(value, kind):
            kind_name = (kind.__name__ if isinstance(kind, type)
                         else "/".join(k.__name__ for k in kind))
            raise ServiceError(
                "bad_request",
                f"field {key!r} must be of type {kind_name}, "
                f"got {type(value).__name__}")
    return value
