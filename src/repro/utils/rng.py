"""Random-number-generator plumbing.

Every stochastic component of the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`; this module centralizes the coercion.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def resolve_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a generator through unchanged lets callers share one stream
    across components, which keeps experiment runs reproducible end to end.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
