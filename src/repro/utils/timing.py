"""A tiny stopwatch used by the experiment harness.

``time.perf_counter`` based, supports accumulating named segments so the
harness can separate e.g. top-k maintenance time from set-cover time.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class Stopwatch:
    """Accumulates wall-clock time per named segment.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.measure("update"):
    ...     pass
    >>> sw.total("update") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def measure(self, name: str):
        """Context manager that adds the elapsed time to segment ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._totals[name] += time.perf_counter() - start
            self._counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to segment ``name``."""
        self._totals[name] += float(seconds)
        self._counts[name] += 1

    def total(self, name: str) -> float:
        """Total seconds accumulated for segment ``name`` (0.0 if unseen)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of measurements recorded for segment ``name``."""
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per measurement of ``name`` (0.0 if unseen)."""
        cnt = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / cnt if cnt else 0.0

    def segments(self) -> dict[str, float]:
        """Snapshot of all segment totals."""
        return dict(self._totals)

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self._totals.clear()
        self._counts.clear()
