"""Input validation helpers shared across the library.

All public entry points of :mod:`repro` funnel their array arguments
through these helpers so that error messages are consistent and the rest
of the code can assume clean ``float64`` C-contiguous data.
"""

from __future__ import annotations

import numpy as np


def as_point_matrix(points, *, name: str = "points") -> np.ndarray:
    """Coerce ``points`` to a 2-d ``float64`` array of shape ``(n, d)``.

    Raises :class:`ValueError` for empty input, wrong rank, non-finite
    entries, or negative coordinates (the paper assumes the nonnegative
    orthant ``R^d_+``).
    """
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-d array, got ndim={arr.ndim}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    if (arr < 0).any():
        raise ValueError(f"{name} must lie in the nonnegative orthant")
    return arr


def as_unit_vector(u, *, d: int | None = None, name: str = "u") -> np.ndarray:
    """Coerce ``u`` to a 1-d nonnegative unit vector.

    A zero vector is rejected; any other nonnegative vector is normalized
    to unit Euclidean norm (the maximum k-regret ratio is scale-invariant,
    so normalization is safe).
    """
    vec = np.ascontiguousarray(u, dtype=np.float64).reshape(-1)
    if d is not None and vec.shape[0] != d:
        raise ValueError(f"{name} must have dimension {d}, got {vec.shape[0]}")
    if not np.isfinite(vec).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    if (vec < 0).any():
        raise ValueError(f"{name} must be nonnegative")
    norm = float(np.linalg.norm(vec))
    if norm == 0.0:
        raise ValueError(f"{name} must be a nonzero vector")
    return vec / norm


def check_dimension(d: int) -> int:
    """Validate a dimensionality argument (``d >= 1``)."""
    d = int(d)
    if d < 1:
        raise ValueError(f"dimensionality must be >= 1, got {d}")
    return d


def check_k(k: int) -> int:
    """Validate the rank parameter ``k`` of a k-RMS query (``k >= 1``)."""
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return k


def check_size_constraint(r: int, d: int | None = None) -> int:
    """Validate the output size constraint ``r``.

    The paper requires ``r >= d`` (Definition 1); we enforce it only when
    ``d`` is supplied because several baselines are well defined for any
    ``r >= 1``.
    """
    r = int(r)
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if d is not None and r < d:
        raise ValueError(f"r must be >= d (paper Definition 1), got r={r}, d={d}")
    return r


def check_epsilon(eps: float, *, name: str = "eps") -> float:
    """Validate an approximation factor in the open interval (0, 1)."""
    eps = float(eps)
    if not 0.0 < eps < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {eps}")
    return eps
