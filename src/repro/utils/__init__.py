"""Shared low-level utilities: validation, RNG handling, timing."""

from repro.utils.validation import (
    as_point_matrix,
    as_unit_vector,
    check_dimension,
    check_epsilon,
    check_k,
    check_size_constraint,
)
from repro.utils.rng import resolve_rng
from repro.utils.timing import Stopwatch

__all__ = [
    "as_point_matrix",
    "as_unit_vector",
    "check_dimension",
    "check_epsilon",
    "check_k",
    "check_size_constraint",
    "resolve_rng",
    "Stopwatch",
]
