"""Shared static-typing aliases for the flat-array core.

Centralizing the ``numpy.typing.NDArray`` dtype aliases keeps the
structure-of-arrays modules honest about which dtype each array carries:
scores and points are float64, tuple ids and dense indices are intp (the
platform pointer-sized integer numpy uses for indexing), persisted id
columns are int64, and masks are bool_.  Import these instead of writing
``np.ndarray`` so mypy can catch dtype mix-ups at the boundaries.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np
from numpy.typing import NDArray

#: Scores, points, utility vectors, thresholds.
FloatArray = NDArray[np.float64]

#: Dense indices and tuple ids used for in-memory indexing.
IndexArray = NDArray[np.intp]

#: Persisted / wire-format integer columns (id lists, delta logs).
Int64Array = NDArray[np.int64]

#: Boolean masks.
BoolArray = NDArray[np.bool_]

#: Arrays whose dtype is not statically pinned (adapter boundaries).
AnyArray = NDArray[Any]

#: Everything ``repro.utils.rng.resolve_rng`` accepts.
SeedLike = Union[int, np.random.Generator, None]

__all__ = [
    "AnyArray",
    "BoolArray",
    "FloatArray",
    "IndexArray",
    "Int64Array",
    "SeedLike",
]
