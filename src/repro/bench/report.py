"""Markdown report generation from run results.

Turns :class:`repro.bench.harness.RunResult` collections into a
self-contained markdown document: a comparison table, per-snapshot
quality traces, and speedup factors against a chosen reference — the
artifact a practitioner attaches to a ticket after running
``python -m repro compare``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bench.harness import RunResult


def comparison_table(results: Sequence[RunResult], *,
                     reference: str | None = None) -> str:
    """Markdown table of update time / quality across algorithms.

    ``reference`` names the algorithm whose update time anchors the
    speedup column (default: the slowest).
    """
    if not results:
        raise ValueError("no results to report")
    by_name = {res.algorithm: res for res in results}
    if reference is None:
        reference = max(by_name, key=lambda n: by_name[n].avg_update_ms)
    if reference not in by_name:
        raise KeyError(f"reference {reference!r} not among results")
    ref_ms = by_name[reference].avg_update_ms
    lines = [
        "| algorithm | avg update (ms) | speedup | mean mrr | max mrr |",
        "|---|---:|---:|---:|---:|",
    ]
    for res in sorted(results, key=lambda r: r.avg_update_ms):
        speedup = ref_ms / res.avg_update_ms if res.avg_update_ms > 0 \
            else float("inf")
        lines.append(
            f"| {res.algorithm} | {res.avg_update_ms:.3f} "
            f"| {speedup:,.1f}x | {res.mean_mrr:.4f} | {res.max_mrr:.4f} |")
    return "\n".join(lines)


def quality_trace(result: RunResult) -> str:
    """Markdown table of the per-snapshot quality trajectory."""
    lines = [
        f"**{result.algorithm}** — {result.n_operations} operations, "
        f"{result.avg_update_ms:.3f} ms/op average",
        "",
        "| after op | db size | result size | mrr |",
        "|---:|---:|---:|---:|",
    ]
    for snap in result.snapshots:
        lines.append(f"| {snap.op_index} | {snap.db_size} "
                     f"| {snap.result_size} | {snap.mrr:.4f} |")
    return "\n".join(lines)


def full_report(results: Sequence[RunResult], *, title: str,
                context: Mapping[str, object] | None = None,
                reference: str | None = None) -> str:
    """Complete markdown report: header, context, comparison, traces."""
    parts = [f"# {title}", ""]
    if context:
        parts.append("## Setup")
        parts.append("")
        for key, value in context.items():
            parts.append(f"* **{key}**: {value}")
        parts.append("")
    parts.append("## Comparison")
    parts.append("")
    parts.append(comparison_table(results, reference=reference))
    parts.append("")
    parts.append("## Quality traces")
    for res in results:
        parts.append("")
        parts.append(quality_trace(res))
    parts.append("")
    return "\n".join(parts)
