"""Algorithm adapters implementing the paper's dynamic protocol (§IV-A).

FD-RMS is natively dynamic. Every static baseline is wrapped in
:class:`StaticAdapter`, which maintains the skyline incrementally and
re-runs the algorithm *only when an operation changes the skyline* —
exactly the protocol the paper uses, including its timing rule: "we only
took the time for k-RMS computation into account and ignored the time
for skyline maintenance".

Because pure-Python baselines recomputing hundreds of times would make
laptop-scale sweeps take hours without changing any conclusion, the
adapter supports an *estimating* mode (default): it counts the skyline
changes in each snapshot interval, recomputes once per snapshot, and
charges ``changes × recompute_time`` as the interval's k-RMS time. With
``estimate=False`` it recomputes on every change, which is the paper's
literal protocol. Both modes return identical results (the result after
op ``t`` depends only on the skyline after op ``t``); only the timing
estimator differs, and EXPERIMENTS.md reports which mode produced each
table.

State maintenance itself lives in :mod:`repro.api.session` — adapters
add only the paper's *timing* accounting on top of a
:class:`~repro.api.session.Session`. Dispatch is registry-driven:
:func:`adapter_for` (and the derived :data:`BASELINE_FACTORIES` table)
looks algorithms up in :mod:`repro.api.registry`, so a newly registered
algorithm is benchmarkable with no edits here.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.api.registry import AlgorithmSpec, get_algorithm, list_algorithms
from repro.api.session import FDRMSSession, RecomputeSession
from repro.data.database import Operation


class DynamicAdapter:
    """Common interface the harness drives.

    ``apply(op)`` processes one operation and returns the seconds of
    *algorithm* time it cost (excluding harness bookkeeping).
    ``result_points()`` returns the current k-RMS result as a matrix.
    """

    name: str = "base"

    def apply(self, op: Operation) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def result_points(self) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def finish_interval(self) -> float:
        """Extra time to charge at a snapshot boundary (default none)."""
        return 0.0


class FDRMSAdapter(DynamicAdapter):
    """Drives :class:`repro.core.FDRMS` (natively fully dynamic)."""

    def __init__(self, initial_points, k: int, r: int, eps: float, *,
                 m_max: int = 1024, seed=None) -> None:
        self.name = "FD-RMS"
        self.session = FDRMSSession(initial_points, r, k, eps=eps,
                                    m_max=m_max, seed=seed)
        self.init_seconds = self.session.init_seconds

    @property
    def db(self):
        return self.session.db

    @property
    def algo(self):
        """The underlying :class:`repro.core.FDRMS` engine."""
        return self.session.engine

    def apply(self, op: Operation) -> float:
        self.session.apply(op)
        return self.session.last_apply_seconds

    def result_points(self) -> np.ndarray:
        return self.session.result_points()


class StaticAdapter(DynamicAdapter):
    """Wraps a static baseline with skyline-triggered recomputation.

    Parameters
    ----------
    initial_points : (n0, d) array
    algorithm : callable(points, **kwargs) -> row indices
        A static baseline from :mod:`repro.baselines`.
    kwargs : dict
        Passed through to ``algorithm`` (including ``r`` / ``k``).
    use_skyline : bool
        Run the algorithm on the skyline (True for 1-RMS algorithms;
        k > 1 algorithms need the full database — §IV-B).
    estimate : bool
        Timing estimator mode (see module docstring). Results are
        unaffected.
    """

    def __init__(self, initial_points, algorithm, *, name: str,
                 kwargs: dict | None = None, use_skyline: bool = True,
                 estimate: bool = True) -> None:
        self.name = name
        self._estimate = estimate
        self._pending_changes = 0
        fixed = dict(kwargs or {})
        self.session = RecomputeSession(
            initial_points, lambda pool: algorithm(pool, **fixed),
            name=name, use_skyline=use_skyline)

    @classmethod
    def from_spec(cls, spec: AlgorithmSpec, initial_points, k: int, r: int, *,
                  seed=None, estimate: bool = True,
                  options: Mapping[str, Any] | None = None
                  ) -> "StaticAdapter":
        """Registry path: bench defaults + routed options drive the spec."""
        merged = dict(spec.bench_kwargs)
        merged.update(dict(options or {}))
        kwargs = spec.build_kwargs(r=r, k=k, seed=seed, options=merged)
        return cls(initial_points, spec.func, name=spec.display_name,
                   kwargs=kwargs,
                   use_skyline=spec.capabilities.skyline_pool,
                   estimate=estimate)

    @property
    def db(self):
        return self.session.db

    @property
    def skyline(self):
        return self.session._skyline

    # -- protocol ------------------------------------------------------
    def apply(self, op: Operation) -> float:
        self.session.apply(op)
        if not self.session.last_changed:
            return 0.0
        if self._estimate:
            self._pending_changes += 1
            return 0.0
        return self.session.recompute()

    def finish_interval(self) -> float:
        """Charge estimated recompute time for the past interval."""
        if not self._estimate:
            return 0.0
        seconds = 0.0
        if self.session.dirty:
            seconds = self.session.recompute()
        charged = seconds * max(0, self._pending_changes - 1)
        self._pending_changes = 0
        return seconds + charged

    def result_points(self) -> np.ndarray:
        return self.session.result_points()


# ----------------------------------------------------------------------
# Registry-driven factories used by the figure benchmarks
# ----------------------------------------------------------------------

def adapter_for(name: str, initial_points, k: int, r: int, *, seed=None,
                estimate: bool = True, **options: Any) -> DynamicAdapter:
    """Instantiate the benchmark adapter for any registered algorithm.

    ``options`` form a shared bag (e.g. the CLI passes ``eps`` and
    ``m_max`` for every algorithm); each key is forwarded only to
    algorithms whose signature accepts it, so callers need no
    per-algorithm dispatch.
    """
    spec = get_algorithm(name)
    routed = {key: value for key, value in options.items()
              if spec.accepts_var_kwargs or key in spec.option_names}
    if spec.capabilities.dynamic:
        eps = routed.pop("eps", 0.02)
        if eps == "auto":
            from repro.core.tuning import suggest_epsilon
            eps = suggest_epsilon(np.asarray(initial_points, dtype=float),
                                  k, r, seed=seed)
        return FDRMSAdapter(initial_points, k, r, eps, seed=seed, **routed)
    return StaticAdapter.from_spec(spec, initial_points, k, r, seed=seed,
                                   estimate=estimate, options=routed)


class _FactoryTable(Mapping):
    """Live display-name → adapter-factory view over the registry.

    Lookups query :func:`repro.api.registry.list_algorithms` on every
    access, so an algorithm registered after import (e.g. a user
    ``@register``) shows up here without re-importing this module.
    """

    @staticmethod
    def _factory(spec: AlgorithmSpec):
        def factory(initial_points, k, r, *, seed=None, estimate=True,
                    **options):
            return adapter_for(spec.name, initial_points, k, r, seed=seed,
                               estimate=estimate, **options)
        factory.display_name = spec.display_name
        return factory

    @staticmethod
    def _specs() -> list[AlgorithmSpec]:
        specs = [spec for spec in list_algorithms() if spec.bench]
        specs.sort(key=lambda s: (not s.capabilities.dynamic, s.name))
        return specs  # FD-RMS first, then statics alphabetically

    def __getitem__(self, name: str):
        for spec in self._specs():
            if spec.display_name == name:
                return self._factory(spec)
        raise KeyError(name)

    def __iter__(self):
        return iter(spec.display_name for spec in self._specs())

    def __len__(self) -> int:
        return len(self._specs())


BASELINE_FACTORIES = _FactoryTable()


def make_adapter(name: str, initial_points, k: int, r: int, *, seed=None,
                 estimate: bool = True, **extra) -> DynamicAdapter:
    """Instantiate an adapter by display name.

    .. deprecated:: 1.1
        Use :func:`adapter_for` (benchmark timing protocol) or
        :func:`repro.api.open_session` (plain streaming) instead; both
        resolve names through :mod:`repro.api.registry`.
    """
    warnings.warn(
        "make_adapter is deprecated; use repro.bench.adapter_for or "
        "repro.api.open_session instead",
        DeprecationWarning, stacklevel=2)
    return adapter_for(name, initial_points, k, r, seed=seed,
                       estimate=estimate, **extra)
