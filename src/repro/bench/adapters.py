"""Algorithm adapters implementing the paper's dynamic protocol (§IV-A).

FD-RMS is natively dynamic. Every static baseline is wrapped in
:class:`StaticAdapter`, which maintains the skyline incrementally and
re-runs the algorithm *only when an operation changes the skyline* —
exactly the protocol the paper uses, including its timing rule: "we only
took the time for k-RMS computation into account and ignored the time
for skyline maintenance".

Because pure-Python baselines recomputing hundreds of times would make
laptop-scale sweeps take hours without changing any conclusion, the
adapter supports an *estimating* mode (default): it counts the skyline
changes in each snapshot interval, recomputes once per snapshot, and
charges ``changes × recompute_time`` as the interval's k-RMS time. With
``estimate=False`` it recomputes on every change, which is the paper's
literal protocol. Both modes return identical results (the result after
op ``t`` depends only on the skyline after op ``t``); only the timing
estimator differs, and EXPERIMENTS.md reports which mode produced each
table.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import (
    dmm_greedy,
    dmm_rrms,
    eps_kernel,
    geo_greedy,
    greedy,
    greedy_star,
    hitting_set,
    sphere,
)
from repro.core.fdrms import FDRMS
from repro.data.database import INSERT, Database, Operation
from repro.skyline.dynamic import DynamicSkyline


class DynamicAdapter:
    """Common interface the harness drives.

    ``apply(op)`` processes one operation and returns the seconds of
    *algorithm* time it cost (excluding harness bookkeeping).
    ``result_points()`` returns the current k-RMS result as a matrix.
    """

    name: str = "base"

    def apply(self, op: Operation) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def result_points(self) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def finish_interval(self) -> float:
        """Extra time to charge at a snapshot boundary (default none)."""
        return 0.0


class FDRMSAdapter(DynamicAdapter):
    """Drives :class:`repro.core.FDRMS` (natively fully dynamic)."""

    def __init__(self, initial_points, k: int, r: int, eps: float, *,
                 m_max: int = 1024, seed=None) -> None:
        self.name = "FD-RMS"
        self.db = Database(initial_points)
        start = time.perf_counter()
        self.algo = FDRMS(self.db, k, r, eps, m_max=m_max, seed=seed)
        self.init_seconds = time.perf_counter() - start

    def apply(self, op: Operation) -> float:
        start = time.perf_counter()
        if op.kind == INSERT:
            self.algo.insert(op.point)
        else:
            self.algo.delete(op.tuple_id)
        return time.perf_counter() - start

    def result_points(self) -> np.ndarray:
        return self.algo.result_points()


class StaticAdapter(DynamicAdapter):
    """Wraps a static baseline with skyline-triggered recomputation.

    Parameters
    ----------
    initial_points : (n0, d) array
    algorithm : callable(points, **kwargs) -> row indices
        A static baseline from :mod:`repro.baselines`.
    kwargs : dict
        Passed through to ``algorithm`` (including ``r`` / ``k``).
    use_skyline : bool
        Run the algorithm on the skyline (True for 1-RMS algorithms;
        k > 1 algorithms need the full database — §IV-B).
    estimate : bool
        Timing estimator mode (see module docstring). Results are
        unaffected.
    """

    def __init__(self, initial_points, algorithm, *, name: str,
                 kwargs: dict | None = None, use_skyline: bool = True,
                 estimate: bool = True) -> None:
        self.name = name
        self._algorithm = algorithm
        self._kwargs = dict(kwargs or {})
        self._use_skyline = use_skyline
        self._estimate = estimate
        self.db = Database(initial_points)
        self.skyline = DynamicSkyline(self.db)
        self._pending_changes = 0
        self._dirty = True
        self._cached: np.ndarray | None = None
        self._last_recompute_seconds = 0.0

    # -- protocol ------------------------------------------------------
    def apply(self, op: Operation) -> float:
        if op.kind == INSERT:
            pid = self.db.insert(op.point)
            changed = self.skyline.insert(pid)
        else:
            self.db.delete(op.tuple_id)
            changed = self.skyline.delete(op.tuple_id)
        if not changed:
            return 0.0
        self._dirty = True
        if self._estimate:
            self._pending_changes += 1
            return 0.0
        return self._recompute()

    def finish_interval(self) -> float:
        """Charge estimated recompute time for the past interval."""
        if not self._estimate:
            return 0.0
        seconds = 0.0
        if self._dirty:
            seconds = self._recompute()
        charged = seconds * max(0, self._pending_changes - 1)
        self._pending_changes = 0
        return seconds + charged

    def result_points(self) -> np.ndarray:
        if self._dirty:
            self._recompute()
        assert self._cached is not None
        return self._cached

    # -- internals -----------------------------------------------------
    def _candidate_pool(self) -> np.ndarray:
        if self._use_skyline:
            _, pts = self.skyline.points()
            return pts
        return self.db.points()

    def _recompute(self) -> float:
        pool = self._candidate_pool()
        start = time.perf_counter()
        idx = self._algorithm(pool, **self._kwargs)
        seconds = time.perf_counter() - start
        self._cached = pool[np.asarray(idx, dtype=np.intp)]
        self._dirty = False
        self._last_recompute_seconds = seconds
        return seconds


# ----------------------------------------------------------------------
# Factory registry used by the figure benchmarks
# ----------------------------------------------------------------------

def _static(algorithm, name, use_skyline=True, **fixed):
    def factory(initial_points, k, r, *, seed=None, estimate=True):
        kwargs = dict(fixed)
        kwargs["r"] = r
        if "needs_k" in kwargs:
            kwargs.pop("needs_k")
            kwargs["k"] = k
        if "needs_seed" in kwargs:
            kwargs.pop("needs_seed")
            kwargs["seed"] = seed
        return StaticAdapter(initial_points, algorithm, name=name,
                             kwargs=kwargs, use_skyline=use_skyline,
                             estimate=estimate)
    factory.display_name = name
    return factory


def _fdrms_factory(initial_points, k, r, *, seed=None, eps=0.02,
                   m_max=1024, estimate=True):
    if eps == "auto":
        from repro.core.tuning import suggest_epsilon
        eps = suggest_epsilon(initial_points, k, r, seed=seed)
    return FDRMSAdapter(initial_points, k, r, eps, m_max=m_max, seed=seed)


_fdrms_factory.display_name = "FD-RMS"

BASELINE_FACTORIES = {
    "FD-RMS": _fdrms_factory,
    "Greedy": _static(greedy, "Greedy", method="lp"),
    "Greedy*": _static(greedy_star, "Greedy*", use_skyline=False,
                       needs_k=True, needs_seed=True, n_samples=5000,
                       candidate_fraction=0.5),
    "GeoGreedy": _static(geo_greedy, "GeoGreedy", method="lp",
                         needs_seed=True),
    "DMM-RRMS": _static(dmm_rrms, "DMM-RRMS", needs_seed=True),
    "DMM-Greedy": _static(dmm_greedy, "DMM-Greedy", needs_seed=True),
    "eps-Kernel": _static(eps_kernel, "eps-Kernel", needs_seed=True),
    "HS": _static(hitting_set, "HS", use_skyline=False, needs_k=True,
                  needs_seed=True, n_samples=2000),
    "Sphere": _static(sphere, "Sphere", needs_seed=True, n_samples=10_000),
}


def make_adapter(name: str, initial_points, k: int, r: int, *, seed=None,
                 estimate: bool = True, **extra) -> DynamicAdapter:
    """Instantiate an adapter by display name (see BASELINE_FACTORIES)."""
    if name not in BASELINE_FACTORIES:
        raise KeyError(f"unknown algorithm {name!r}; choose from "
                       f"{sorted(BASELINE_FACTORIES)}")
    return BASELINE_FACTORIES[name](initial_points, k, r, seed=seed,
                                    estimate=estimate, **extra)
