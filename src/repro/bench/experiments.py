"""Per-figure experiment drivers (§IV-B).

Each function reproduces one sweep of the paper's evaluation at a
configurable scale and returns a mapping suitable for tabular printing
with :func:`format_series_table`. The benchmark scripts under
``benchmarks/`` call these with laptop-scale defaults; EXPERIMENTS.md
records shapes against the paper's figures.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.bench.adapters import adapter_for
from repro.bench.harness import RunResult, run_workload
from repro.core.regret import RegretEvaluator
from repro.data.workload import make_paper_workload


def _run_one(name: str, points, k: int, r: int, *, seed, eval_samples,
             estimate=True, n_snapshots=10, **extra) -> RunResult:
    """Replay one algorithm on the standard workload.

    ``extra`` is a shared option bag: :func:`adapter_for` routes each
    key to the algorithms whose signature accepts it (so e.g. ``eps``
    reaches FD-RMS and is dropped for every static baseline).
    """
    workload = make_paper_workload(points, seed=seed, n_snapshots=n_snapshots)
    adapter = adapter_for(name, workload.initial, k, r, seed=seed,
                          estimate=estimate, **extra)
    evaluator = RegretEvaluator(points.shape[1], n_samples=eval_samples,
                                seed=seed + 1 if isinstance(seed, int) else seed)
    return run_workload(adapter, workload, evaluator, k)


def experiment_epsilon_sweep(points, *, k: int = 1, r: int = 50,
                             eps_values: Iterable[float] = (
                                 0.0001, 0.0032, 0.0064, 0.0128, 0.0256, 0.0512),
                             m_max: int = 1024, seed: int = 7,
                             eval_samples: int = 20_000,
                             n_snapshots: int = 10) -> dict[float, RunResult]:
    """Fig. 5: FD-RMS update time and mrr as ε varies."""
    out: dict[float, RunResult] = {}
    for eps in eps_values:
        out[float(eps)] = _run_one("FD-RMS", points, k, r, seed=seed,
                                   eval_samples=eval_samples, eps=float(eps),
                                   m_max=m_max, n_snapshots=n_snapshots)
    return out


def experiment_vary_r(points, algorithms: Iterable[str], *,
                      r_values: Iterable[int] = (10, 25, 50, 75, 100),
                      k: int = 1, seed: int = 7,
                      eval_samples: int = 20_000,
                      fdrms_eps: float = 0.02,
                      m_max: int = 1024,
                      n_snapshots: int = 10) -> dict[str, dict[int, RunResult]]:
    """Fig. 6: update time and mrr as the result size r varies."""
    out: dict[str, dict[int, RunResult]] = {}
    for name in algorithms:
        series: dict[int, RunResult] = {}
        for r in r_values:
            series[int(r)] = _run_one(name, points, k, int(r), seed=seed,
                                      eval_samples=eval_samples,
                                      n_snapshots=n_snapshots,
                                      eps=fdrms_eps, m_max=m_max)
        out[name] = series
    return out


def experiment_vary_k(points, algorithms: Iterable[str], *,
                      k_values: Iterable[int] = (1, 2, 3, 4, 5),
                      r: int = 10, seed: int = 7,
                      eval_samples: int = 20_000,
                      fdrms_eps: float = 0.02,
                      m_max: int = 1024,
                      n_snapshots: int = 10) -> dict[str, dict[int, RunResult]]:
    """Fig. 7: update time and mrr as the rank parameter k varies."""
    out: dict[str, dict[int, RunResult]] = {}
    for name in algorithms:
        series: dict[int, RunResult] = {}
        for k in k_values:
            series[int(k)] = _run_one(name, points, int(k), r, seed=seed,
                                      eval_samples=eval_samples,
                                      n_snapshots=n_snapshots,
                                      eps=fdrms_eps, m_max=m_max)
        out[name] = series
    return out


def experiment_scalability(make_points, algorithms: Iterable[str],
                           sweep_values: Iterable, *, k: int = 1, r: int = 50,
                           seed: int = 7, eval_samples: int = 20_000,
                           fdrms_eps: float = 0.02,
                           m_max: int = 1024,
                           n_snapshots: int = 10) -> dict[str, dict]:
    """Fig. 8: sweeps over d or n; ``make_points(value)`` builds the data."""
    out: dict[str, dict] = {}
    for name in algorithms:
        series: dict = {}
        for value in sweep_values:
            points = make_points(value)
            series[value] = _run_one(name, points, k, r, seed=seed,
                                     eval_samples=eval_samples,
                                     n_snapshots=n_snapshots,
                                     eps=fdrms_eps, m_max=m_max)
        out[name] = series
    return out


def format_series_table(series: Mapping[str, Mapping], *, x_label: str,
                        metric: str = "avg_update_ms",
                        fmt: str = "{:>10.3f}") -> str:
    """Render nested run results as a paper-style text table.

    Rows are algorithms, columns the swept parameter; ``metric`` is any
    :class:`RunResult` property name (``avg_update_ms``, ``mean_mrr``).
    """
    xs = sorted({x for inner in series.values() for x in inner})
    labels = [f"{x_label}={x}" for x in xs]
    width = max(10, max(len(lbl) for lbl in labels))
    header = f"{'algorithm':>12} | " + " ".join(f"{lbl:>{width}}" for lbl in labels)
    lines = [header, "-" * len(header)]
    for name, inner in series.items():
        cells = []
        for x in xs:
            if x in inner:
                cells.append(f"{fmt.format(getattr(inner[x], metric)):>{width}}")
            else:
                cells.append(" " * width)
        lines.append(f"{name:>12} | " + " ".join(cells))
    return "\n".join(lines)
