"""Component-level profiling of FD-RMS updates.

Breaks the per-operation cost of FD-RMS into its §III components:

* ``topk``  — ε-approximate top-k maintenance (dual-tree work),
* ``cover`` — stable set-cover maintenance (Algorithm 1 operations),

by wrapping the two subsystem objects in transparent timing proxies.
The complexity analysis of §III-B predicts the top-k side scales with
``u(Δ_t)·n_t`` and the cover side with ``m² log m``; the profile makes
that split measurable (see ``benchmarks/bench_profile_components.py``).
"""

from __future__ import annotations

import time

from repro.core.fdrms import FDRMS
from repro.data.database import Database
from repro.utils import Stopwatch


class _TimedProxy:
    """Wraps an object; every method call is timed under one segment."""

    def __init__(self, target, stopwatch: Stopwatch, segment: str) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_stopwatch", stopwatch)
        object.__setattr__(self, "_segment", segment)

    def __getattr__(self, name):
        attr = getattr(self._target, name)
        if not callable(attr):
            return attr
        stopwatch = self._stopwatch
        segment = self._segment

        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return attr(*args, **kwargs)
            finally:
                stopwatch.add(segment, time.perf_counter() - start)
        return timed

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        setattr(self._target, name, value)


class ProfiledFDRMS(FDRMS):
    """FD-RMS with a per-component stopwatch.

    Usage::

        algo = ProfiledFDRMS(db, k=1, r=10, eps=0.02, m_max=1024)
        ... updates ...
        algo.profile.total("topk"), algo.profile.total("cover")

    Note the proxies time *calls from FDRMS into the subsystem*; nested
    subsystem-internal calls are not double counted because the proxy
    wraps only the outer boundary.
    """

    def __init__(self, db: Database, k: int, r: int, eps: float, *,
                 m_max: int = 1024, seed=None) -> None:
        self.profile = Stopwatch()
        super().__init__(db, k, r, eps, m_max=m_max, seed=seed)
        # Wrap after construction so INITIALIZATION is not attributed to
        # the update segments.
        self._topk = _TimedProxy(self._topk, self.profile, "topk")
        self._wrap_cover()

    def _wrap_cover(self) -> None:
        if not isinstance(self._cover, _TimedProxy):
            self._cover = _TimedProxy(self._cover, self.profile, "cover")

    def _rebuild_cover(self) -> None:
        super()._rebuild_cover()   # installs a fresh StableSetCover
        self._wrap_cover()

    def delete(self, tuple_id: int) -> None:
        super().delete(tuple_id)
        # The drain-to-empty path installs a bare cover; re-wrap it.
        self._wrap_cover()

    def breakdown(self) -> dict[str, float]:
        """Seconds per component accumulated over all updates."""
        return self.profile.segments()
