"""Workload runner: replay a dynamic workload against an adapter.

Implements the paper's measurement loop (§IV-A): apply every operation,
record the k-RMS result at the 10 snapshot marks, and report

* **average update time** — total algorithm seconds / #operations
  (skyline maintenance excluded for static baselines, as in the paper);
* **maximum k-regret ratio** — the mean over snapshots of ``mrr_k``
  measured on a shared frozen utility test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.adapters import DynamicAdapter
from repro.core.regret import RegretEvaluator
from repro.data.workload import DynamicWorkload


@dataclass(frozen=True)
class SnapshotRecord:
    """State captured at one snapshot mark."""

    op_index: int
    result_size: int
    mrr: float
    db_size: int


@dataclass
class RunResult:
    """Outcome of one (algorithm, workload) run."""

    algorithm: str
    n_operations: int
    total_seconds: float
    snapshots: list[SnapshotRecord] = field(default_factory=list)

    @property
    def avg_update_ms(self) -> float:
        """Average per-operation algorithm time in milliseconds."""
        if self.n_operations == 0:
            return 0.0
        return 1000.0 * self.total_seconds / self.n_operations

    @property
    def mean_mrr(self) -> float:
        """Mean maximum k-regret ratio over the recorded snapshots."""
        if not self.snapshots:
            return 0.0
        return float(np.mean([s.mrr for s in self.snapshots]))

    @property
    def max_mrr(self) -> float:
        if not self.snapshots:
            return 0.0
        return float(max(s.mrr for s in self.snapshots))


def run_workload(adapter: DynamicAdapter, workload: DynamicWorkload,
                 evaluator: RegretEvaluator, k: int, *,
                 db_getter=None) -> RunResult:
    """Replay ``workload`` on ``adapter`` and measure time and quality.

    Parameters
    ----------
    adapter : DynamicAdapter
        Already initialized on ``workload.initial``.
    evaluator : RegretEvaluator
        Frozen utility test set shared across compared runs.
    k : int
        Rank parameter used in the mrr evaluation.
    db_getter : callable() -> (ids, points), optional
        Snapshot provider for the current database; defaults to the
        adapter's own ``db`` attribute.
    """
    if db_getter is None:
        def db_getter():
            return adapter.db.snapshot()
    total = 0.0
    records: list[SnapshotRecord] = []
    for idx, op, is_snapshot in workload.replay():
        total += adapter.apply(op)
        if is_snapshot:
            total += adapter.finish_interval()
            _, points = db_getter()
            q = adapter.result_points()
            mrr = evaluator.evaluate(points, q, k) if q.shape[0] else 1.0
            records.append(SnapshotRecord(op_index=idx,
                                          result_size=int(q.shape[0]),
                                          mrr=float(mrr),
                                          db_size=int(points.shape[0])))
    return RunResult(algorithm=adapter.name,
                     n_operations=workload.n_operations,
                     total_seconds=total, snapshots=records)
