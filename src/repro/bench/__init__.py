"""Experiment harness: the paper's measurement protocol (§IV)."""

from repro.bench.adapters import (
    DynamicAdapter,
    FDRMSAdapter,
    StaticAdapter,
    BASELINE_FACTORIES,
    adapter_for,
    make_adapter,
)
from repro.bench.harness import RunResult, SnapshotRecord, run_workload
from repro.bench.experiments import (
    experiment_epsilon_sweep,
    experiment_vary_r,
    experiment_vary_k,
    experiment_scalability,
    format_series_table,
)

__all__ = [
    "DynamicAdapter",
    "FDRMSAdapter",
    "StaticAdapter",
    "BASELINE_FACTORIES",
    "adapter_for",
    "make_adapter",
    "RunResult",
    "SnapshotRecord",
    "run_workload",
    "experiment_epsilon_sweep",
    "experiment_vary_r",
    "experiment_vary_k",
    "experiment_scalability",
    "format_series_table",
]
