"""Algorithm registry: one catalogue for every k-RMS solver in the repo.

Every algorithm — the paper's FD-RMS and each static baseline — is
described by an :class:`AlgorithmSpec` carrying a normalized entry
point, capability metadata, and bench wiring. Specs are created with
the :func:`register` decorator placed directly on the algorithm's
function (or, for dynamic algorithms, next to their
:class:`~repro.api.session.Session` implementation), so adding a new
solver to the whole system — ``solve()``, ``open_session()``, the CLI,
and the benchmark harness — is a single ``@register(...)`` line.

Name resolution is case-insensitive and alias-aware: ``"greedy"``,
``"Greedy"``, ``"GREEDY"`` all resolve to the same spec, and paper
spellings such as ``"Greedy*"`` or ``"eps-Kernel"`` are registered as
aliases of their canonical keys.

This module is intentionally dependency-light (stdlib only) so baseline
modules can import it without cycles; the built-in algorithms are
registered lazily on first lookup via :func:`_ensure_builtins`.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from collections.abc import Callable, Mapping
from typing import Any


class UnknownAlgorithmError(KeyError):
    """Raised when a name resolves to no registered algorithm."""

    def __init__(self, name: str, choices: list[str]) -> None:
        self.name = name
        self.choices = list(choices)
        super().__init__(
            f"unknown algorithm {name!r}; choose from {', '.join(choices)}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


class CapabilityError(ValueError):
    """Raised when a request exceeds an algorithm's declared capabilities."""


@dataclass(frozen=True)
class Capabilities:
    """Declarative description of what an algorithm can do.

    Attributes
    ----------
    supports_k : bool
        Handles the rank parameter ``k > 1`` (k-regret), not just the
        classic ``k = 1`` regret-minimizing set.
    dynamic : bool
        Natively maintains its result under insertions and deletions
        (FD-RMS); static algorithms are replayed via skyline-triggered
        recomputation instead.
    min_size : bool
        Has a min-size mode: can target a regret threshold ε instead of
        a result-size budget ``r`` (the paper's min-size k-RMS).
    d2_only : bool
        Only correct in two dimensions (the interval-DP oracle).
    exact : bool
        Returns an optimal answer (within discretization), not a
        heuristic one.
    randomized : bool
        Consumes a ``seed``; results vary across seeds.
    skyline_pool : bool
        The dynamic protocol may run it on the skyline only (1-RMS
        results are skyline subsets); algorithms with ``supports_k``
        generally need the full database (§IV-B) and set this False.
    """

    supports_k: bool = False
    dynamic: bool = False
    min_size: bool = False
    d2_only: bool = False
    exact: bool = False
    randomized: bool = False
    skyline_pool: bool = True

    def flags(self) -> dict[str, bool]:
        """Capability name → value, for tabular display."""
        return {f: getattr(self, f) for f in (
            "supports_k", "dynamic", "min_size", "d2_only", "exact",
            "randomized", "skyline_pool")}


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the system knows about one registered algorithm.

    ``func`` is the one-shot solver with the repo's normalized calling
    convention: ``func(points, r, ...)`` returning row indices into
    ``points``. ``accepts`` records which of the normalized optional
    arguments (``k``, ``seed``) the underlying callable understands, and
    ``option_names`` every further keyword it takes — used to route a
    shared option bag (e.g. the CLI's ``--eps``) to the algorithms that
    understand each key and silently drop it for the rest.
    """

    name: str                       # canonical lowercase key, e.g. "fd-rms"
    display_name: str               # paper spelling, e.g. "FD-RMS"
    func: Callable[..., Any]
    capabilities: Capabilities = field(default_factory=Capabilities)
    summary: str = ""
    aliases: tuple[str, ...] = ()
    accepts: frozenset[str] = frozenset()
    option_names: frozenset[str] = frozenset()
    accepts_var_kwargs: bool = False
    bench: bool = False             # include in the benchmark factory table
    bench_kwargs: Mapping[str, Any] = field(
        default_factory=lambda: MappingProxyType({}))
    session_factory: Callable[..., Any] | None = None

    # -- invocation ----------------------------------------------------
    def build_kwargs(self, *, r: int, k: int = 1, seed: Any = None,
                     options: Mapping[str, Any] | None = None
                     ) -> dict[str, Any]:
        """Keyword arguments for ``func`` under the normalized convention.

        Unknown keys in ``options`` are dropped (they belong to other
        algorithms sharing the option bag); ``k`` and ``seed`` are only
        forwarded when the callable takes them.
        """
        kwargs: dict[str, Any] = {"r": int(r)}
        if "k" in self.accepts:
            kwargs["k"] = int(k)
        if "seed" in self.accepts:
            kwargs["seed"] = seed
        for key, value in dict(options or {}).items():
            if key in ("r", "k", "seed"):
                continue
            if self.accepts_var_kwargs or key in self.option_names:
                kwargs[key] = value
        return kwargs

    def run(self, points: Any, *, r: int, k: int = 1, seed: Any = None,
            options: Mapping[str, Any] | None = None) -> Any:
        """Invoke the solver; returns row indices into ``points``."""
        return self.func(points, **self.build_kwargs(
            r=r, k=k, seed=seed, options=options))

    def check_options(self, options: Mapping[str, Any]) -> None:
        """Reject option keys the underlying callable cannot accept.

        Facade entry points (``solve``, ``open_session``) call this so a
        typo'd keyword fails loudly; the bench harness deliberately
        skips it to route one shared option bag across algorithms.
        """
        if self.accepts_var_kwargs:
            return
        unknown = [key for key in options
                   if key not in self.option_names
                   and key not in ("r", "k", "seed")]
        if unknown:
            raise TypeError(
                f"{self.display_name} does not accept option(s) "
                f"{', '.join(sorted(unknown))}; it accepts "
                f"{', '.join(sorted(self.option_names)) or 'none'}")

    def check_request(self, *, k: int = 1, d: int | None = None) -> None:
        """Validate a request against the declared capabilities."""
        if k > 1 and not self.capabilities.supports_k:
            supporters = [s.display_name for s in list_algorithms()
                          if s.capabilities.supports_k]
            raise CapabilityError(
                f"{self.display_name} does not support k > 1 (got k={k}); "
                f"algorithms with k-support: {', '.join(supporters)}")
        if d is not None and self.capabilities.d2_only and d != 2:
            raise CapabilityError(
                f"{self.display_name} only supports d = 2 inputs (got d={d})")


_LOCK = threading.Lock()
_LOAD_LOCK = threading.Lock()  # serializes builtin loading, distinct from
_REGISTRY: dict[str, AlgorithmSpec] = {}  # _LOCK so register_spec calls made
_ALIASES: dict[str, str] = {}             # during the imports don't deadlock
_builtins_loaded = False


def _normalize(name: str) -> str:
    return str(name).strip().lower()


def _introspect(
        func: Callable[..., Any]
) -> tuple[frozenset[str], frozenset[str], bool]:
    """Discover the normalized args and extra options ``func`` takes."""
    accepts: set[str] = set()
    options: set[str] = set()
    var_kwargs = False
    for pname, param in inspect.signature(func).parameters.items():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            var_kwargs = True
            continue
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if pname in ("points", "r"):
            continue
        if pname in ("k", "seed"):
            accepts.add(pname)
        else:
            options.add(pname)
    return frozenset(accepts), frozenset(options), var_kwargs


def register_spec(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Insert a fully-built spec into the registry (idempotent per func)."""
    key = _normalize(spec.name)
    spec = replace(spec, name=key,
                   bench_kwargs=MappingProxyType(dict(spec.bench_kwargs)))
    with _LOCK:
        existing = _REGISTRY.get(key)
        if existing is not None:
            if existing.func is spec.func:
                return existing  # repeated import; keep the first spec
            raise ValueError(f"algorithm {key!r} is already registered")
        _REGISTRY[key] = spec
        for alias in (spec.display_name, *spec.aliases):
            akey = _normalize(alias)
            owner = _ALIASES.setdefault(akey, key)
            if owner != key:
                raise ValueError(
                    f"alias {alias!r} of {key!r} already points to {owner!r}")
    return spec


def register(name: str, *, display_name: str | None = None,
             aliases: tuple[str, ...] = (), summary: str = "",
             capabilities: Capabilities | None = None,
             bench: bool = False,
             bench_kwargs: Mapping[str, Any] | None = None,
             session_factory: Callable[..., Any] | None = None,
             ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a solver function under ``name``.

    The decorated function is returned unchanged, so direct calls keep
    their exact historical behavior; the registry stores enough
    signature metadata to drive it through the normalized
    ``spec.run(points, r=..., k=..., seed=...)`` convention.
    """
    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        accepts, option_names, var_kwargs = _introspect(func)
        register_spec(AlgorithmSpec(
            name=name,
            display_name=display_name or name,
            func=func,
            capabilities=capabilities or Capabilities(),
            summary=summary,
            aliases=tuple(aliases),
            accepts=accepts,
            option_names=option_names,
            accepts_var_kwargs=var_kwargs,
            bench=bench,
            bench_kwargs=MappingProxyType(dict(bench_kwargs or {})),
            session_factory=session_factory,
        ))
        return func
    return decorate


def _ensure_builtins() -> None:
    """Import every module that registers a built-in algorithm (once).

    The loaded flag is only set after every import succeeded, so a
    failed or concurrent first load never leaves the catalogue silently
    incomplete: failures propagate and the next lookup retries.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _LOAD_LOCK:
        if _builtins_loaded:
            return
        _load_builtin_modules()
        _builtins_loaded = True


def _load_builtin_modules() -> None:
    import repro.api.session  # noqa: F401  (registers FD-RMS)
    import repro.baselines.arm  # noqa: F401
    import repro.baselines.cube  # noqa: F401
    import repro.baselines.dmm  # noqa: F401
    import repro.baselines.dp2d  # noqa: F401
    import repro.baselines.eps_kernel  # noqa: F401
    import repro.baselines.geogreedy  # noqa: F401
    import repro.baselines.greedy  # noqa: F401
    import repro.baselines.greedy_star  # noqa: F401
    import repro.baselines.hitting_set  # noqa: F401
    import repro.baselines.rrr  # noqa: F401
    import repro.baselines.sphere  # noqa: F401


def get_algorithm(name: str) -> AlgorithmSpec:
    """Resolve ``name`` (canonical, display, or alias; any case)."""
    _ensure_builtins()
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownAlgorithmError(name, algorithm_names()) from None


def list_algorithms(**capability_filters: bool) -> list[AlgorithmSpec]:
    """All registered specs, sorted by canonical name.

    Keyword filters match :class:`Capabilities` fields, e.g.
    ``list_algorithms(supports_k=True)`` or ``list_algorithms(dynamic=False)``.
    """
    _ensure_builtins()
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    for flag, wanted in capability_filters.items():
        if not hasattr(Capabilities(), flag):
            raise TypeError(f"unknown capability filter {flag!r}")
        specs = [s for s in specs if getattr(s.capabilities, flag) == wanted]
    return specs


def algorithm_names(*, display: bool = False,
                    **capability_filters: bool) -> list[str]:
    """Sorted canonical (or display) names of registered algorithms."""
    specs = list_algorithms(**capability_filters)
    return sorted(s.display_name for s in specs) if display \
        else [s.name for s in specs]
