"""Uniform result object returned by the :func:`repro.solve` facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro._types import FloatArray, IndexArray


@dataclass(frozen=True)
class RMSResult:
    """Outcome of one k-RMS solve, identical across all algorithms.

    Attributes
    ----------
    algorithm : str
        Display name of the algorithm that produced the result.
    indices : numpy.ndarray
        Sorted row indices of the selected tuples in the input matrix
        (read-only).
    points : numpy.ndarray
        The selected rows themselves, ``(len(indices), d)`` (read-only).
    r, k : int
        The size budget and rank parameter of the request.
    n, d : int
        Shape of the input point matrix.
    wall_seconds : float
        Wall-clock time of the solver call (excludes any regret
        evaluation).
    regret : float | None
        Sampled maximum k-regret ratio of the result, present when
        ``solve(..., evaluate=True)`` was requested.
    config : Mapping[str, Any]
        The solver configuration actually used (normalized kwargs after
        option routing), for reproducibility.
    """

    algorithm: str
    indices: IndexArray
    points: FloatArray
    r: int
    k: int
    n: int
    d: int
    wall_seconds: float
    regret: float | None = None
    config: Mapping[str, Any] = field(
        default_factory=lambda: MappingProxyType({}))

    def __post_init__(self) -> None:
        # Copy before freezing: asarray may alias caller-owned arrays,
        # and setflags on an alias would make the caller's data
        # read-only as a side effect.
        idx = np.array(self.indices, dtype=np.intp)
        pts = np.array(self.points, dtype=float)
        idx.setflags(write=False)
        pts.setflags(write=False)
        object.__setattr__(self, "indices", idx)
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "config",
                           MappingProxyType(dict(self.config)))

    def __len__(self) -> int:
        return int(self.indices.size)

    @property
    def size(self) -> int:
        """Cardinality of the selected subset, ``|Q|``."""
        return len(self)

    def summary(self) -> str:
        """One-line human-readable description."""
        regret = "n/a" if self.regret is None else f"{self.regret:.4f}"
        return (f"{self.algorithm}: |Q|={len(self)} (r={self.r}, k={self.k}) "
                f"on n={self.n}, d={self.d} in "
                f"{1000.0 * self.wall_seconds:.2f} ms, mrr={regret}")
