"""One-shot ``solve()`` facade over the algorithm registry.

>>> import numpy as np
>>> from repro import solve
>>> res = solve(np.random.default_rng(0).random((200, 3)), r=8,
...             algo="sphere", seed=0)
>>> len(res) <= 8
True
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro._types import SeedLike

from repro.api.registry import AlgorithmSpec, get_algorithm
from repro.api.result import RMSResult
from repro.utils import as_point_matrix, check_k, check_size_constraint


_DP2D_AUTO_LIMIT = 2000


def _auto_algorithm(n: int, d: int, k: int) -> str:
    """Default algorithm policy for ``algo="auto"``.

    Small two-dimensional 1-RMS inputs get the exact interval-DP oracle;
    its gap matrix is quadratic in the hull size, so beyond
    ``_DP2D_AUTO_LIMIT`` points (where an anti-correlated hull can be
    huge) everything goes to FD-RMS, the only algorithm whose declared
    capabilities cover every (k, d) combination.
    """
    if d == 2 and k == 1 and n <= _DP2D_AUTO_LIMIT:
        return "dp2d"
    return "fd-rms"


def solve(points: ArrayLike, r: int, k: int = 1, *, algo: str = "auto",
          seed: SeedLike = None,
          evaluate: bool = False, eval_samples: int = 10_000,
          eval_utilities: ArrayLike | None = None,
          **options: Any) -> RMSResult:
    """Compute a k-regret minimizing set with any registered algorithm.

    Parameters
    ----------
    points : (n, d) array-like
        The database. The matrix is passed to the algorithm as-is (no
        skyline pre-filtering), so ``solve(points, r, algo=name)`` is
        call-for-call equivalent to invoking the baseline directly.
    r : int
        Result size budget.
    k : int
        Rank parameter; algorithms without ``supports_k`` reject k > 1.
    algo : str
        Registry name (canonical, display, or alias; case-insensitive),
        or ``"auto"`` to pick per :func:`_auto_algorithm`.
    seed : int | numpy.random.Generator | None
        Forwarded to randomized algorithms; ignored by deterministic ones.
    evaluate : bool
        Also measure the sampled maximum k-regret ratio of the result
        (``eval_samples`` utility vectors); stored in ``result.regret``.
        The drawn test set is cached per ``(d, eval_samples, seed)`` and
        reused across calls, so repeated ``solve(..., evaluate=True)``
        runs are measured against the same utilities.
    eval_utilities : (m, d) array, optional
        Explicit utility test set for the evaluation — overrides the
        cached draw (use to compare snapshots/algorithms against one
        pinned sample, e.g. ``RegretEvaluator(...).utilities``).
    **options
        Algorithm-specific keywords (e.g. ``eps=0.01`` for FD-RMS,
        ``n_samples=5000`` for sampled baselines). Keys the chosen
        algorithm does not understand raise ``TypeError`` — use
        :meth:`AlgorithmSpec.build_kwargs` for permissive routing.

    Returns
    -------
    RMSResult
        Frozen record with indices, points, timing, and configuration.
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    k = check_k(k)
    r = check_size_constraint(r)
    name = _auto_algorithm(n, d, k) if algo == "auto" else algo
    spec = get_algorithm(name)
    spec.check_request(k=k, d=d)
    spec.check_options(options)
    kwargs = spec.build_kwargs(r=r, k=k, seed=seed, options=options)
    start = time.perf_counter()
    indices = np.asarray(spec.func(pts, **kwargs), dtype=np.intp)
    wall = time.perf_counter() - start
    indices = np.sort(indices)

    regret = None
    if evaluate:
        from repro.core.regret import (RegretEvaluator,
                                       max_k_regret_ratio_sampled)
        if eval_utilities is not None:
            regret = float(max_k_regret_ratio_sampled(
                pts, pts[indices], k, utilities=eval_utilities))
        else:
            evaluator = RegretEvaluator(d, n_samples=max(eval_samples, d),
                                        seed=seed)
            regret = float(evaluator.evaluate(pts, pts[indices], k))

    config: Mapping[str, Any] = dict(kwargs)
    return RMSResult(algorithm=spec.display_name, indices=indices,
                     points=pts[indices], r=r, k=k, n=n, d=d,
                     wall_seconds=wall, regret=regret, config=config)


def describe(algo: str) -> str:
    """Human-readable capability card for one registered algorithm."""
    spec = get_algorithm(algo)
    flags = ", ".join(f"{name}={'yes' if value else 'no'}"
                      for name, value in spec.capabilities.flags().items())
    return f"{spec.display_name}: {spec.summary or '(no summary)'} [{flags}]"


__all__ = ["solve", "describe", "AlgorithmSpec"]
