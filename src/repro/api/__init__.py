"""Unified solver API: registry, ``solve()`` facade, and sessions.

This package is the canonical entry point for running any k-RMS
algorithm in the repo:

* :func:`repro.api.solve` — one-shot ``solve(points, r, k, algo=...)``
  returning a uniform :class:`~repro.api.result.RMSResult`;
* :func:`repro.api.open_session` — streaming
  :class:`~repro.api.session.Session` (``insert``/``delete``/``result``)
  for dynamic workloads;
* :func:`repro.api.register` / :func:`repro.api.get_algorithm` /
  :func:`repro.api.list_algorithms` — the algorithm registry with
  capability metadata, which the CLI and benchmark harness also use for
  dispatch.

Submodules are loaded lazily (PEP 562) so that baseline modules can
``from repro.api.registry import register`` without import cycles.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "AlgorithmSpec": "repro.api.registry",
    "Capabilities": "repro.api.registry",
    "CapabilityError": "repro.api.registry",
    "UnknownAlgorithmError": "repro.api.registry",
    "algorithm_names": "repro.api.registry",
    "get_algorithm": "repro.api.registry",
    "list_algorithms": "repro.api.registry",
    "register": "repro.api.registry",
    "register_spec": "repro.api.registry",
    "RMSResult": "repro.api.result",
    "describe": "repro.api.solve",
    "solve": "repro.api.solve",
    "BatchValidationError": "repro.api.session",
    "FDRMSSession": "repro.api.session",
    "RecomputeSession": "repro.api.session",
    "Session": "repro.api.session",
    "open_session": "repro.api.session",
    "validate_batch": "repro.api.session",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
