"""Streaming ``Session`` protocol: one interface for dynamic k-RMS.

A :class:`Session` maintains a k-RMS result while the database changes:

``insert(point) -> id`` · ``delete(id)`` · ``apply(op)`` ·
``result() -> ids`` · ``result_points() -> matrix`` · ``stats() -> dict``

Two implementations cover every registered algorithm:

* :class:`FDRMSSession` — the paper's natively dynamic FD-RMS engine;
* :class:`RecomputeSession` — wraps any static baseline with the
  paper's replay protocol (§IV-A): maintain the skyline incrementally
  and re-run the algorithm only when an operation changes it.

:func:`open_session` dispatches through the algorithm registry, so the
same code path drives FD-RMS and every baseline:

>>> import numpy as np
>>> from repro.api import open_session
>>> s = open_session(np.random.default_rng(0).random((300, 3)), r=8,
...                  algo="FD-RMS", seed=0, m_max=64)
>>> pid = s.insert([0.99, 0.99, 0.99])
>>> pid in s.result()
True
"""

from __future__ import annotations

import abc
import time
from collections.abc import Callable, Iterable, Mapping
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro._types import FloatArray, IndexArray, SeedLike

from repro.api.registry import (
    AlgorithmSpec,
    Capabilities,
    get_algorithm,
    register,
)
from repro.core.fdrms import FDRMS
from repro.data.database import DELETE, INSERT, Database, Operation
from repro.skyline.dynamic import DynamicSkyline


class BatchValidationError(ValueError):
    """A malformed batch was rejected before any state change.

    Raised by :func:`validate_batch` (and therefore by every
    ``Session.apply_batch``) with the index of the offending operation.
    The contract is atomic rejection: when this is raised, no operation
    of the batch has been applied, logged to a WAL, or counted — the
    engine's state digest is exactly what it was before the call.
    """

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"batch operation #{index}: {reason}")
        self.index = index
        self.reason = reason


# Mapping-input spellings of the two operation kinds.
_KIND_ALIASES = {INSERT: INSERT, "insert": INSERT,
                 DELETE: DELETE, "delete": DELETE}


def _coerce_op(op: Any, index: int) -> Operation:
    if isinstance(op, Operation):
        return op
    if isinstance(op, Mapping):
        kind = _KIND_ALIASES.get(op.get("kind"))
        if kind is None:
            raise BatchValidationError(
                index, f"unknown operation kind {op.get('kind')!r}")
        if kind == INSERT:
            if "point" not in op:
                raise BatchValidationError(
                    index, "insert operation is missing 'point'")
            try:
                point = np.asarray(op["point"], dtype=float)
            except (TypeError, ValueError) as exc:
                raise BatchValidationError(
                    index, f"insert point is not numeric: {exc}") from None
            return Operation(INSERT, point, None)
        tuple_id = op.get("id", op.get("tuple_id"))
        if tuple_id is None:
            raise BatchValidationError(
                index, "delete operation is missing 'id'")
        try:
            tuple_id = int(tuple_id)
        except (TypeError, ValueError):
            raise BatchValidationError(
                index, f"delete id is not an integer: {tuple_id!r}"
            ) from None
        return Operation(DELETE, None, tuple_id)
    raise BatchValidationError(
        index, f"expected an Operation or a mapping, "
               f"got {type(op).__name__}")


def validate_batch(ops: Iterable[Operation | Mapping[str, Any]], *,
                   d: int | None = None) -> list[Operation]:
    """Validate one ``apply_batch`` wave; returns coerced operations.

    The whole wave is checked **before** anything is applied, so a
    malformed operation raises a typed :class:`BatchValidationError`
    instead of corrupting engine state mid-batch. Checks per op:

    * kind is insert/delete (mappings are coerced to ``Operation``);
    * insert points are 1-D, finite (no NaN/inf), and match the
      database dimensionality ``d`` when given;
    * delete ids are non-negative integers, not duplicated within the
      wave (the second delete of the same id would fault mid-batch),
      and not ids the same wave already deletes after re-inserting —
      i.e. each id is deleted at most once per wave.
    """
    out: list[Operation] = []
    seen_deletes: set[int] = set()
    for index, raw in enumerate(ops):
        op = _coerce_op(raw, index)
        if op.kind == INSERT:
            point = np.asarray(op.point, dtype=float)
            if point.ndim != 1 or point.size == 0:
                raise BatchValidationError(
                    index, f"insert point must be a non-empty 1-D "
                           f"vector, got shape {point.shape}")
            if d is not None and point.size != d:
                raise BatchValidationError(
                    index, f"insert point has dimension {point.size}, "
                           f"database has d={d}")
            if not np.isfinite(point).all():
                raise BatchValidationError(
                    index, "insert point has non-finite coordinates")
        else:
            if op.tuple_id is None:
                raise BatchValidationError(
                    index, "delete operation is missing its tuple id")
            tuple_id = int(op.tuple_id)
            if tuple_id < 0:
                raise BatchValidationError(
                    index, f"delete id must be >= 0, got {tuple_id}")
            if tuple_id in seen_deletes:
                raise BatchValidationError(
                    index, f"duplicate delete of id {tuple_id} within "
                           f"one wave")
            seen_deletes.add(tuple_id)
        out.append(op)
    return out


class Session(abc.ABC):
    """Abstract streaming interface over a dynamic database.

    Concrete sessions own a :class:`~repro.data.Database`; all updates
    must flow through the session so the maintained result stays
    consistent with the data.
    """

    name: str = "session"

    def __init__(self) -> None:
        self._counters = {"inserts": 0, "deletes": 0}

    # -- updates -------------------------------------------------------
    @abc.abstractmethod
    def insert(self, point: ArrayLike) -> int:
        """Insert one tuple; returns its new id."""

    @abc.abstractmethod
    def delete(self, tuple_id: int) -> None:
        """Delete the tuple with id ``tuple_id``."""

    def apply(self, op: Operation) -> int | None:
        """Apply one workload :class:`~repro.data.Operation`."""
        if op.kind == INSERT:
            return self.insert(op.point)
        if op.kind == DELETE:
            self.delete(op.tuple_id)
            return None
        raise ValueError(f"unknown operation kind {op.kind!r}")

    def apply_batch(self, ops: Iterable[Operation]) -> list[int | None]:
        """Apply a sequence of operations; returns per-op ids.

        Semantically identical to ``[self.apply(op) for op in ops]`` —
        same final result, same counters — but engines that support
        batching (FD-RMS, the recompute wrapper) override this with a
        pipeline that amortizes work across the whole slice. Each entry
        of the returned list is the inserted tuple's id for an
        insertion, ``None`` for a deletion.

        The wave is validated atomically first: a malformed operation
        raises :class:`BatchValidationError` before *any* operation is
        applied, so engine state (and its digest) is untouched.
        """
        return [self.apply(op)
                for op in validate_batch(ops, d=self.db.d)]

    def delete_many(self, tuple_ids: Iterable[int]) -> None:
        """Delete a batch of tuples.

        Semantically identical to calling :meth:`delete` per id — same
        final result, same counters — but engines that support batching
        override this with their bulk deletion pipeline.
        """
        for tuple_id in tuple_ids:
            self.delete(tuple_id)

    def update(self, tuple_id: int, point: ArrayLike) -> int:
        """Value update = delete + insert (§II-B); returns the new id."""
        self.delete(tuple_id)
        return self.insert(point)

    # -- reads ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def db(self) -> Database:
        """The live database the session maintains."""

    @abc.abstractmethod
    def result(self) -> list[int]:
        """Current k-RMS result as sorted tuple ids."""

    @abc.abstractmethod
    def result_points(self) -> FloatArray:
        """Current result as a ``(|Q|, d)`` matrix."""

    def stats(self) -> dict[str, Any]:
        """Maintenance counters; subclasses extend with engine detail."""
        return dict(self._counters)

    def __len__(self) -> int:
        return len(self.db)


class FDRMSSession(Session):
    """Streaming FD-RMS: a thin, timed wrapper over the paper's engine.

    Parameters mirror :class:`repro.core.FDRMS`; additionally
    ``eps="auto"`` asks :func:`repro.core.tuning.suggest_epsilon` for a
    data-driven ε, and an ``m_max`` not exceeding ``r`` is widened to
    ``2 * r`` (FD-RMS requires ``m_max > r``).

    Durability (both optional):

    * ``snapshot`` — a checkpoint directory. The session restores the
      engine from it (verified end to end, WAL tail rolled forward)
      instead of paying the cold start; any detected fault — torn
      write, bit flip, version skew, partial WAL — degrades gracefully
      to a cold start from ``points``, recorded under
      ``stats()["recovery"]``. A restored session never silently
      diverges: the restore path re-checks the engine's logical state
      digest at every stage.
    * ``wal`` — a write-ahead-log directory. Every applied operation is
      appended (write-ahead) so a later ``snapshot=`` open can roll
      forward to the exact pre-crash state. After a cold start the
      stale log is discarded: its operations are not part of the fresh
      engine's history.
    """

    def __init__(self, points: ArrayLike, r: int, k: int = 1, *,
                 eps: float | str = 0.02, m_max: int = 1024,
                 seed: SeedLike = None,
                 snapshot: Any = None, wal: Any = None,
                 parallel: int | str | None = None) -> None:
        super().__init__()
        self.name = "FD-RMS"
        points = np.asarray(points, dtype=float)
        if eps == "auto":
            from repro.core.tuning import suggest_epsilon
            eps = suggest_epsilon(points, k, r, seed=seed)
        if m_max <= r:
            m_max = 2 * r
        self.recovery: dict[str, Any] | None = None
        self._wal = None
        engine = None
        start = time.perf_counter()
        if snapshot is not None:
            engine = self._try_restore(snapshot, wal, k=k, r=r,
                                       eps=eps, m_max=m_max,
                                       parallel=parallel)
        if engine is not None:
            self.engine = engine
            self._db = engine.database
            self.init_seconds = time.perf_counter() - start
            self.init_profile = {"restore": self.init_seconds}
            stats = engine.statistics()
            self._counters["inserts"] = int(stats["inserts"])
            self._counters["deletes"] = int(stats["deletes"])
        else:
            self._db = Database(points)
            self.engine = FDRMS(self._db, k, r, float(eps), m_max=m_max,
                                seed=seed, parallel=parallel)
            self.init_seconds = time.perf_counter() - start
            #: Cold-start phase breakdown (seconds) from the engine:
            #: tree builds, bootstrap GEMM, membership fill, set-cover
            #: greedy — or {"restore": seconds} on a warm restore.
            self.init_profile = dict(self.engine.init_profile)
        if wal is not None:
            from repro.persist.wal import WriteAheadLog
            # A restored engine resumes its log; a cold-started one
            # must not inherit operations it never saw.
            self._wal = WriteAheadLog(wal, fresh=engine is None)
        self.algo_seconds = 0.0
        self.last_apply_seconds = 0.0

    def _try_restore(self, snapshot: Any, wal: Any, *, k: int, r: int,
                     eps: float, m_max: int,
                     parallel: int | str | None = None) -> FDRMS | None:
        """Verified restore; ``None`` (+ recovery record) on any fault."""
        from repro.persist.checkpoint import CheckpointError
        from repro.persist.recovery import restore_engine
        from repro.persist.wal import WALError
        try:
            engine, info = restore_engine(snapshot, wal=wal,
                                          parallel=parallel)
            if (engine.k, engine.r, engine.m_max) != (k, r, m_max) or \
                    engine.eps != float(eps):
                raise CheckpointError(
                    f"checkpoint config (k={engine.k}, r={engine.r}, "
                    f"eps={engine.eps}, m_max={engine.m_max}) does not "
                    f"match the requested session (k={k}, r={r}, "
                    f"eps={eps}, m_max={m_max})")
        except (CheckpointError, WALError) as exc:
            self.recovery = {"mode": "cold_start", "cold_starts": 1,
                             "error": f"{type(exc).__name__}: {exc}"}
            return None
        self.recovery = dict(info)
        self.recovery["cold_starts"] = 0
        return engine

    def checkpoint(self, directory: Any) -> dict[str, Any]:
        """Write a verified checkpoint of the current engine state.

        Any attached WAL is synced first and its head position recorded
        in the manifest, so a later restore replays exactly the
        operations applied after this call. Returns the manifest.
        """
        from repro.persist.checkpoint import save_checkpoint
        position = 0
        if self._wal is not None:
            self._wal.sync()
            position = self._wal.position
        return save_checkpoint(self.engine, directory,
                               wal_position=position)

    def _log_ops(self, ops: list[Operation]) -> None:
        if self._wal is not None:
            self._wal.append(ops)

    def close(self) -> None:
        """Flush and close the WAL and release engine backend resources."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self.engine.close()

    @property
    def db(self) -> Database:
        return self._db

    def insert(self, point: ArrayLike) -> int:
        self._log_ops([Operation(INSERT, np.asarray(point, dtype=float),
                                 None)])
        start = time.perf_counter()
        pid = self.engine.insert(point)
        self.last_apply_seconds = time.perf_counter() - start
        self.algo_seconds += self.last_apply_seconds
        self._counters["inserts"] += 1
        return pid

    def delete(self, tuple_id: int) -> None:
        self._log_ops([Operation(DELETE, None, int(tuple_id))])
        start = time.perf_counter()
        self.engine.delete(tuple_id)
        self.last_apply_seconds = time.perf_counter() - start
        self.algo_seconds += self.last_apply_seconds
        self._counters["deletes"] += 1

    def apply_batch(self, ops: Iterable[Operation]) -> list[int | None]:
        """Batched updates through :meth:`FDRMS.apply_batch`.

        Consecutive insertions are scored with one ``(batch × M)`` GEMM
        and bulk-loaded into the flat tuple index; consecutive
        deletions are bulk-removed with tombstoned tuple-index repairs;
        the maintained result is identical to applying the operations
        one by one.

        Validation precedes the write-ahead log append: a rejected wave
        must leave no trace anywhere — not in the engine, not in the
        WAL a recovery would replay.
        """
        ops = validate_batch(ops, d=self._db.d)
        self._log_ops(ops)
        start = time.perf_counter()
        out = self.engine.apply_batch(ops)
        self.last_apply_seconds = time.perf_counter() - start
        self.algo_seconds += self.last_apply_seconds
        for op in ops:
            key = "inserts" if op.kind == INSERT else "deletes"
            self._counters[key] += 1
        return out

    def delete_many(self, tuple_ids: Iterable[int]) -> None:
        """Batched deletions through :meth:`FDRMS.delete_many`."""
        ids = list(tuple_ids)
        self._log_ops([Operation(DELETE, None, int(i)) for i in ids])
        start = time.perf_counter()
        self.engine.delete_many(ids)
        self.last_apply_seconds = time.perf_counter() - start
        self.algo_seconds += self.last_apply_seconds
        self._counters["deletes"] += len(ids)

    def result(self) -> list[int]:
        return self.engine.result()

    def result_points(self) -> FloatArray:
        return self.engine.result_points()

    def stats(self) -> dict[str, Any]:
        out = super().stats()
        out.update(self.engine.statistics())
        out["algo_seconds"] = self.algo_seconds
        out["init_seconds"] = self.init_seconds
        # Only sessions that asked for durability report recovery state:
        # adding the key unconditionally would perturb the pinned replay
        # determinism digests for plain sessions.
        if self.recovery is not None:
            out["recovery"] = dict(self.recovery)
        return out


class RecomputeSession(Session):
    """Skyline-triggered recomputation wrapper for static algorithms.

    ``solver`` is ``callable(pool_points) -> row indices into the
    pool``; the pool is the current skyline (``use_skyline=True``, valid
    for 1-RMS algorithms since their results are skyline subsets) or the
    full database. Recomputation is lazy: operations only mark the
    result dirty, and the solver runs at the next read.
    """

    def __init__(self, points: ArrayLike,
                 solver: Callable[[FloatArray], Any], *,
                 name: str = "static", use_skyline: bool = True) -> None:
        super().__init__()
        self.name = name
        self._solver = solver
        self._use_skyline = use_skyline
        start = time.perf_counter()
        self._db = Database(np.asarray(points, dtype=float))
        t_db = time.perf_counter()
        self._skyline = DynamicSkyline(self._db) if use_skyline else None
        t_sky = time.perf_counter()
        #: Cold-start cost of this session (the lazy solver run is
        #: charged to ``algo_seconds`` at the first read instead).
        self.init_seconds = t_sky - start
        self.init_profile = {"database": t_db - start,
                             "skyline_init": t_sky - t_db}
        self.dirty = True
        self.last_changed = True
        self.recomputes = 0
        self.algo_seconds = 0.0
        self.last_recompute_seconds = 0.0
        self._cached_ids: IndexArray | None = None
        self._cached_points: FloatArray | None = None

    @classmethod
    def from_spec(cls, spec: AlgorithmSpec, points: ArrayLike, *,
                  r: int, k: int = 1,
                  seed: SeedLike = None,
                  options: Mapping[str, Any] | None = None
                  ) -> "RecomputeSession":
        """Build the session for a registered static algorithm."""
        kwargs = spec.build_kwargs(r=r, k=k, seed=seed, options=options)

        def solver(pool: FloatArray) -> Any:
            return spec.func(pool, **kwargs)

        return cls(points, solver, name=spec.display_name,
                   use_skyline=spec.capabilities.skyline_pool)

    @property
    def db(self) -> Database:
        return self._db

    # -- updates -------------------------------------------------------
    def insert(self, point: ArrayLike) -> int:
        pid = self._db.insert(point)
        changed = self._skyline.insert(pid) if self._skyline else True
        self.last_changed = bool(changed)
        self.dirty = self.dirty or self.last_changed
        self._counters["inserts"] += 1
        return pid

    def delete(self, tuple_id: int) -> None:
        self._db.delete(tuple_id)
        changed = self._skyline.delete(tuple_id) if self._skyline else True
        self.last_changed = bool(changed)
        self.dirty = self.dirty or self.last_changed
        self._counters["deletes"] += 1

    def apply_batch(self, ops: Iterable[Operation]) -> list[int | None]:
        """Sequential fallback with skyline maintenance deferred.

        Operations are applied straight to the database (consecutive
        insertions in bulk) and the skyline is recomputed **once** at
        batch end — the skyline is a pure function of the alive tuples,
        so the result matches per-op maintenance. The solver itself
        stays lazy, as for single operations: it reruns at the next
        read if the pool changed.

        As for every session, the wave is validated atomically up
        front (:class:`BatchValidationError` leaves state untouched).
        """
        ops = validate_batch(ops, d=self._db.d)
        if not ops:
            return []
        out: list[int | None] = []
        try:
            for pid, op in zip(self._db.apply_batch(ops), ops):
                if op.kind == INSERT:
                    out.append(pid)
                    self._counters["inserts"] += 1
                else:
                    out.append(None)
                    self._counters["deletes"] += 1
            return out
        finally:
            # Runs even when an operation mid-batch raises (the prefix
            # before the bad op is already in the database): the skyline
            # must be re-synced to whatever actually applied.
            if self._skyline is not None:
                changed = self._skyline.rebuild()
            else:
                changed = True
            self.last_changed = changed
            self.dirty = self.dirty or changed

    def delete_many(self, tuple_ids: Iterable[int]) -> None:
        """Bulk removal with the skyline re-synced once at the end.

        As with :meth:`insert`/:meth:`delete`, skyline maintenance is
        not charged to ``algo_seconds`` — only the lazy solver run is,
        at the next read.
        """
        ids = list(tuple_ids)
        if not ids:
            return
        self._db.delete_many(ids)
        self._counters["deletes"] += len(ids)
        if self._skyline is not None:
            changed = self._skyline.rebuild()
        else:
            changed = True
        self.last_changed = bool(changed)
        self.dirty = self.dirty or self.last_changed

    # -- reads ---------------------------------------------------------
    def pool(self) -> tuple[IndexArray, FloatArray]:
        """Current candidate pool as ``(ids, points)``."""
        if self._skyline is not None:
            return self._skyline.points()
        return self._db.snapshot()

    def recompute(self) -> float:
        """Run the solver on the current pool; returns solver seconds."""
        ids, pool = self.pool()
        start = time.perf_counter()
        idx = np.asarray(self._solver(pool), dtype=np.intp)
        seconds = time.perf_counter() - start
        self._cached_ids = ids[idx]
        self._cached_points = pool[idx]
        self.dirty = False
        self.recomputes += 1
        self.algo_seconds += seconds
        self.last_recompute_seconds = seconds
        return seconds

    def _ensure_fresh(self) -> None:
        if self.dirty or self._cached_ids is None:
            self.recompute()

    def result(self) -> list[int]:
        self._ensure_fresh()
        assert self._cached_ids is not None  # _ensure_fresh populated it
        return sorted(int(i) for i in self._cached_ids)

    def result_points(self) -> FloatArray:
        self._ensure_fresh()
        assert self._cached_points is not None  # _ensure_fresh populated it
        return self._cached_points

    def stats(self) -> dict[str, Any]:
        # Refresh the lazy result first so every reported number —
        # recomputes, algo_seconds, solution_size — describes the same
        # post-recompute state (and a second stats() call agrees).
        self._ensure_fresh()
        assert self._cached_ids is not None  # _ensure_fresh populated it
        out = super().stats()
        out["recomputes"] = self.recomputes
        out["algo_seconds"] = self.algo_seconds
        out["init_seconds"] = self.init_seconds
        out["solution_size"] = len(self._cached_ids)
        if self._skyline is not None:
            out["skyline_size"] = len(self._skyline)
        return out


def open_session(points: ArrayLike, r: int, k: int = 1, *,
                 algo: str = "fd-rms", seed: SeedLike = None,
                 **options: Any) -> Session:
    """Open a streaming session for any registered algorithm.

    Dynamic algorithms (FD-RMS) get their native session; static ones
    are wrapped in :class:`RecomputeSession` under the paper's replay
    protocol. ``options`` are routed per the algorithm's signature.
    """
    points = np.asarray(points, dtype=float)
    spec = get_algorithm(algo)
    spec.check_request(k=k, d=int(points.shape[1]) if points.ndim == 2
                       else None)
    spec.check_options(options)
    if spec.session_factory is not None:
        return spec.session_factory(points, r, k, seed=seed, **options)
    return RecomputeSession.from_spec(spec, points, r=r, k=k, seed=seed,
                                      options=options)


# ----------------------------------------------------------------------
# FD-RMS registration: the one dynamic algorithm in the catalogue.
# ----------------------------------------------------------------------

def _fdrms_session_factory(points: ArrayLike, r: int, k: int = 1, *,
                           seed: SeedLike = None, eps: float | str = 0.02,
                           m_max: int = 1024, snapshot: Any = None,
                           wal: Any = None,
                           parallel: int | str | None = None
                           ) -> FDRMSSession:
    return FDRMSSession(points, r, k, eps=eps, m_max=m_max, seed=seed,
                        snapshot=snapshot, wal=wal, parallel=parallel)


@register("fd-rms", display_name="FD-RMS",
          aliases=("fdrms", "fd_rms"),
          summary="fully-dynamic k-RMS via approximate top-k set cover "
                  "(this paper)",
          capabilities=Capabilities(supports_k=True, dynamic=True,
                                    randomized=True, skyline_pool=False),
          bench=True,
          session_factory=_fdrms_session_factory)
def fdrms_solve(points: ArrayLike, r: int, k: int = 1, *,
                seed: SeedLike = None, eps: float = 0.02,
                m_max: int = 1024, snapshot: Any = None,
                wal: Any = None,
                parallel: int | str | None = None) -> IndexArray:
    """One-shot FD-RMS: build the dynamic structure, read the result.

    Tuple ids of a fresh :class:`~repro.data.Database` are the row
    indices of ``points``, so the returned array indexes the input
    matrix like every static baseline.
    """
    session = FDRMSSession(points, r, k, eps=eps, m_max=m_max, seed=seed,
                           snapshot=snapshot, wal=wal, parallel=parallel)
    try:
        return np.asarray(session.result(), dtype=np.intp)
    finally:
        session.close()
