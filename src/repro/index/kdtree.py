"""A dynamic k-d tree with max-inner-product queries (tuple index TI).

The paper's FD-RMS implementation uses a k-d tree over the tuples to
answer ε-approximate top-k queries and to refresh them after updates
(§III-C). Because utility vectors are nonnegative, the inner product of
``u`` with any point inside an axis-aligned box is at most
``<u, box_max>``; that single bound drives both the best-first top-k
search and the range (``score >= τ``) search.

Dynamics:

* **insert** descends by the existing splits and pushes the point into a
  leaf bucket, splitting the bucket at the median of its widest
  dimension when it overflows.
* **delete** is by tuple id: the id is removed from its leaf (an id→leaf
  map makes this O(1) to locate) and alive counters are decremented up
  the path. A subtree whose alive count falls below half of its total is
  rebuilt from its alive points, which keeps queries within a constant
  factor of a freshly built tree (standard amortization).

Bounding boxes are maintained as *covers* (they may be slightly loose
after deletions until a rebuild); the query bounds stay valid because a
loose box only weakens pruning, never correctness.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.utils import as_point_matrix

_LEAF_CAPACITY = 16


class _Node:
    """One k-d tree node; a leaf when ``axis`` is None."""

    __slots__ = ("axis", "split", "left", "right", "parent",
                 "box_min", "box_max", "total", "alive", "bucket")

    def __init__(self, parent=None) -> None:
        self.axis: int | None = None
        self.split: float = 0.0
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.parent: _Node | None = parent
        self.box_min: np.ndarray | None = None
        self.box_max: np.ndarray | None = None
        self.total = 0
        self.alive = 0
        self.bucket: list[int] = []

    @property
    def is_leaf(self) -> bool:
        return self.axis is None


class KDTree:
    """Dynamic k-d tree over d-dimensional points keyed by integer ids.

    Parameters
    ----------
    d : int
        Dimensionality.
    leaf_capacity : int
        Maximum bucket size before a leaf splits.
    """

    def __init__(self, d: int, *, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {leaf_capacity}")
        self._d = int(d)
        self._leaf_capacity = int(leaf_capacity)
        self._points: dict[int, np.ndarray] = {}
        self._leaf_of: dict[int, _Node] = {}
        self._root = _Node()

    # ------------------------------------------------------------------
    # Construction / updates
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, ids, points, *, leaf_capacity: int = _LEAF_CAPACITY) -> "KDTree":
        """Bulk-build a tree from aligned ``ids`` and ``points`` arrays."""
        pts = as_point_matrix(points)
        ids = np.asarray(list(ids), dtype=np.intp)
        if ids.shape[0] != pts.shape[0]:
            raise ValueError("ids and points must have equal length")
        tree = cls(pts.shape[1], leaf_capacity=leaf_capacity)
        tree._points = {int(i): pts[row].copy() for row, i in enumerate(ids)}
        tree._root = tree._build_subtree(list(tree._points.keys()), None)
        return tree

    def __len__(self) -> int:
        return self._root.alive

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._points

    @property
    def d(self) -> int:
        return self._d

    def insert(self, tuple_id: int, point) -> None:
        """Insert a point under ``tuple_id`` (must be fresh)."""
        if tuple_id in self._points:
            raise KeyError(f"tuple id {tuple_id} already present")
        vec = np.asarray(point, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._d:
            raise ValueError(f"point has d={vec.shape[0]}, expected {self._d}")
        self._points[tuple_id] = vec.copy()
        node = self._root
        while True:
            self._absorb_box(node, vec)
            node.total += 1
            node.alive += 1
            if node.is_leaf:
                break
            node = node.left if vec[node.axis] <= node.split else node.right
        node.bucket.append(tuple_id)
        self._leaf_of[tuple_id] = node
        if len(node.bucket) > self._leaf_capacity:
            self._split_leaf(node)

    def delete(self, tuple_id: int) -> None:
        """Remove ``tuple_id``; rebuilds decayed subtrees opportunistically."""
        leaf = self._leaf_of.pop(tuple_id, None)
        if leaf is None:
            raise KeyError(f"tuple id {tuple_id} not present")
        del self._points[tuple_id]
        leaf.bucket.remove(tuple_id)
        # ``alive`` drops immediately; ``total`` only resets on rebuild, so
        # the ratio measures decay since the subtree was last built.
        rebuild_candidate: _Node | None = None
        node: _Node | None = leaf
        while node is not None:
            node.alive -= 1
            if node.alive * 2 < node.total and node.total > self._leaf_capacity:
                rebuild_candidate = node  # highest such node wins (found last)
            node = node.parent
        if rebuild_candidate is not None:
            self._rebuild(rebuild_candidate)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(self, u, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Best-first top-k by inner product with nonnegative ``u``.

        Returns ``(ids, scores)`` sorted best-first with ties broken
        toward smaller ids, matching ``Database.top_k``.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        if k < 1 or self._root.alive == 0:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        k = min(int(k), self._root.alive)
        counter = itertools.count()
        frontier = [(-self._node_bound(self._root, u), next(counter), self._root)]
        # Min-heap of (score, -id) keeps the current k best; its root is
        # the threshold for pruning.
        best: list[tuple[float, int]] = []
        while frontier:
            neg_bound, _, node = heapq.heappop(frontier)
            if len(best) == k and -neg_bound < best[0][0]:
                break
            if node.is_leaf:
                for tid in node.bucket:
                    score = float(self._points[tid] @ u)
                    entry = (score, -tid)
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                for child in (node.left, node.right):
                    if child is not None and child.alive > 0:
                        bound = self._node_bound(child, u)
                        if len(best) < k or bound >= best[0][0]:
                            heapq.heappush(frontier, (-bound, next(counter), child))
        ordered = sorted(best, key=lambda e: (-e[0], -e[1]))
        ids = np.asarray([-tid for _, tid in ordered], dtype=np.intp)
        scores = np.asarray([s for s, _ in ordered])
        return ids, scores

    def range_query(self, u, threshold: float) -> tuple[np.ndarray, np.ndarray]:
        """All ids with ``<u, p> >= threshold``; returns ``(ids, scores)``.

        Output is sorted by descending score, ties toward smaller id.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        hits_ids: list[int] = []
        hits_scores: list[float] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.alive == 0 or self._node_bound(node, u) < threshold:
                continue
            if node.is_leaf:
                for tid in node.bucket:
                    score = float(self._points[tid] @ u)
                    if score >= threshold:
                        hits_ids.append(tid)
                        hits_scores.append(score)
            else:
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
        if not hits_ids:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        ids = np.asarray(hits_ids, dtype=np.intp)
        scores = np.asarray(hits_scores)
        order = np.lexsort((ids, -scores))
        return ids[order], scores[order]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _node_bound(self, node: _Node, u: np.ndarray) -> float:
        """Upper bound on ``<u, p>`` over alive points below ``node``."""
        if node.box_max is None:
            return -np.inf
        return float(node.box_max @ u)

    @staticmethod
    def _absorb_box(node: _Node, vec: np.ndarray) -> None:
        if node.box_min is None:
            node.box_min = vec.copy()
            node.box_max = vec.copy()
        else:
            np.minimum(node.box_min, vec, out=node.box_min)
            np.maximum(node.box_max, vec, out=node.box_max)

    def _build_subtree(self, ids: list[int], parent: _Node | None) -> _Node:
        node = _Node(parent)
        node.total = node.alive = len(ids)
        if ids:
            pts = np.asarray([self._points[i] for i in ids])
            node.box_min = pts.min(axis=0)
            node.box_max = pts.max(axis=0)
        if len(ids) <= self._leaf_capacity:
            node.bucket = list(ids)
            for tid in ids:
                self._leaf_of[tid] = node
            return node
        pts = np.asarray([self._points[i] for i in ids])
        axis = int(np.argmax(node.box_max - node.box_min))
        values = pts[:, axis]
        split = float(np.median(values))
        left_ids = [tid for tid, v in zip(ids, values) if v <= split]
        right_ids = [tid for tid, v in zip(ids, values) if v > split]
        if not left_ids or not right_ids:
            # All values equal on the widest axis: keep as an oversized
            # leaf (every split would be degenerate).
            node.bucket = list(ids)
            for tid in ids:
                self._leaf_of[tid] = node
            return node
        node.axis = axis
        node.split = split
        node.left = self._build_subtree(left_ids, node)
        node.right = self._build_subtree(right_ids, node)
        return node

    def _split_leaf(self, leaf: _Node) -> None:
        ids = leaf.bucket
        pts = np.asarray([self._points[i] for i in ids])
        spread = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] == 0.0:
            return  # degenerate: defer splitting until points differ
        split = float(np.median(pts[:, axis]))
        left_ids = [tid for tid, v in zip(ids, pts[:, axis]) if v <= split]
        right_ids = [tid for tid, v in zip(ids, pts[:, axis]) if v > split]
        if not left_ids or not right_ids:
            return
        leaf.axis = axis
        leaf.split = split
        leaf.bucket = []
        leaf.left = self._build_subtree(left_ids, leaf)
        leaf.right = self._build_subtree(right_ids, leaf)

    def _rebuild(self, node: _Node) -> None:
        """Rebuild ``node`` in place from its alive points."""
        alive_ids = self._collect_alive(node)
        fresh = self._build_subtree(alive_ids, node.parent)
        node.axis = fresh.axis
        node.split = fresh.split
        node.left = fresh.left
        node.right = fresh.right
        if node.left is not None:
            node.left.parent = node
        if node.right is not None:
            node.right.parent = node
        node.box_min = fresh.box_min
        node.box_max = fresh.box_max
        node.total = fresh.total
        node.alive = fresh.alive
        node.bucket = fresh.bucket
        if node.is_leaf:
            for tid in node.bucket:
                self._leaf_of[tid] = node

    def _collect_alive(self, node: _Node) -> list[int]:
        out: list[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.is_leaf:
                out.extend(cur.bucket)
            else:
                if cur.left is not None:
                    stack.append(cur.left)
                if cur.right is not None:
                    stack.append(cur.right)
        return out
