"""A dynamic k-d tree with max-inner-product queries (tuple index TI).

The paper's FD-RMS implementation uses a k-d tree over the tuples to
answer ε-approximate top-k queries and to refresh them after updates
(§III-C). Because utility vectors are nonnegative, the inner product of
``u`` with any point inside an axis-aligned box is at most
``<u, box_max>``; that single bound drives both the best-first top-k
search and the range (``score >= τ``) search.

Storage layout
--------------
The tree is a **flat structure-of-arrays**, not an object graph. Node
metadata lives in contiguous NumPy arrays indexed by node id (``_axis``,
``_split``, ``_left``/``_right``/``_parent``, ``_box_min``/``_box_max``
as ``(capacity, d)`` matrices, ``_total``/``_alive`` counters); points
live in a pooled ``(capacity, d)`` slot matrix with an id ↔ slot map;
leaf buckets are per-leaf slot arrays with amortized-doubling growth.
Queries expand a *frontier* of node ids in vectorized waves — bounds for
the whole frontier come from one gathered mat-vec, leaf candidates are
scored in one gathered mat-vec — instead of per-node Python recursion.
Node ids freed by subtree rebuilds are recycled through a free list.

Dynamics (same amortization contract as the original object-graph tree):

* **insert** descends by the existing splits and pushes the point into a
  leaf bucket, splitting the bucket at the median of its widest
  dimension when it overflows. :meth:`insert_many` routes a whole batch
  level-by-level with array ops (one wave per tree level).
* **delete** is by tuple id: the id is removed from its leaf (a slot →
  leaf array makes this O(1) to locate) and alive counters are
  decremented up the path. A subtree whose alive count falls below half
  of its total is rebuilt from its alive points, which keeps queries
  within a constant factor of a freshly built tree (standard
  amortization).

Bounding boxes are maintained as *covers* (they may be slightly loose
after deletions until a rebuild); the query bounds stay valid because a
loose box only weakens pruning, never correctness.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from numpy.typing import ArrayLike

from repro._types import AnyArray, FloatArray, IndexArray
from repro.utils import as_point_matrix

_LEAF_CAPACITY = 16

# Frontier nodes expanded per wave of the best-first top-k search. Small
# enough to stay close to true best-first pruning, large enough that the
# per-wave numpy overhead amortizes.
_TOPK_WAVE = 8


class KDTree:
    """Dynamic k-d tree over d-dimensional points keyed by integer ids.

    Parameters
    ----------
    d : int
        Dimensionality.
    leaf_capacity : int
        Maximum bucket size before a leaf splits.
    """

    def __init__(self, d: int, *, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {leaf_capacity}")
        self._d = int(d)
        self._leaf_capacity = int(leaf_capacity)
        # --- node arrays (SoA) ---
        cap = 16
        self._axis = np.full(cap, -1, dtype=np.int32)     # -1 → leaf
        self._split = np.zeros(cap, dtype=np.float64)
        self._left = np.full(cap, -1, dtype=np.int32)
        self._right = np.full(cap, -1, dtype=np.int32)
        self._parent = np.full(cap, -1, dtype=np.int32)
        self._box_min = np.full((cap, self._d), np.inf, dtype=np.float64)
        self._box_max = np.full((cap, self._d), -np.inf, dtype=np.float64)
        self._total = np.zeros(cap, dtype=np.int64)
        self._alive = np.zeros(cap, dtype=np.int64)
        self._buckets: list[IndexArray | None] = [None] * cap
        self._bucket_len = np.zeros(cap, dtype=np.int64)
        self._n_nodes = 1                                  # node 0 = root
        self._free_nodes: list[int] = []
        self._buckets[0] = np.empty(self._leaf_capacity + 1, dtype=np.intp)
        # --- point pool ---
        pcap = 16
        self._pts = np.empty((pcap, self._d), dtype=np.float64)
        self._ids = np.empty(pcap, dtype=np.intp)          # slot -> tuple id
        self._leaf_of_slot = np.full(pcap, -1, dtype=np.int32)
        self._n_slots = 0
        self._free_slots: list[int] = []
        self._slot_of: dict[int, int] = {}                 # tuple id -> slot

    # ------------------------------------------------------------------
    # Construction / updates
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, ids: Iterable[int], points: ArrayLike, *,
              leaf_capacity: int = _LEAF_CAPACITY) -> "KDTree":
        """Bulk-build a tree from aligned ``ids`` and ``points`` arrays.

        A true O(n log n) construction: the point pool is filled with
        one scatter and the tree comes from a single recursive median
        split (:meth:`_build_into`) — no per-point routing, bucket
        appends, or overflow splitting. The resulting structure is
        identical to inserting the batch into an empty tree.
        """
        pts = as_point_matrix(points)
        ids = np.asarray(list(ids), dtype=np.intp)
        n = ids.shape[0]
        if n != pts.shape[0]:
            raise ValueError("ids and points must have equal length")
        tree = cls(pts.shape[1], leaf_capacity=leaf_capacity)
        if n == 0:
            return tree
        tree._slot_of = dict(zip(ids.tolist(), range(n)))
        if len(tree._slot_of) != n:
            raise KeyError("duplicate tuple ids in batch")
        tree._grow_pool(n)
        tree._pts[:n] = pts
        tree._ids[:n] = ids
        tree._n_slots = n
        tree._build_into(0, np.arange(n, dtype=np.intp), -1)
        return tree

    def __len__(self) -> int:
        return int(self._alive[0])

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._slot_of

    @property
    def d(self) -> int:
        return self._d

    def insert(self, tuple_id: int, point: ArrayLike) -> None:
        """Insert a point under ``tuple_id`` (must be fresh)."""
        if tuple_id in self._slot_of:
            raise KeyError(f"tuple id {tuple_id} already present")
        vec = np.asarray(point, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._d:
            raise ValueError(f"point has d={vec.shape[0]}, expected {self._d}")
        slot = self._new_slot(int(tuple_id), vec)
        axis, split = self._axis, self._split
        left, right = self._left, self._right
        vl = vec.tolist()
        node = 0
        path = [0]
        while True:
            ax = int(axis[node])
            if ax < 0:
                break
            node = int(left[node] if vl[ax] <= split[node] else right[node])
            path.append(node)
        # One gather/scatter over the (unique) root-to-leaf path instead of
        # per-level ufunc calls.
        p = np.asarray(path, dtype=np.intp)
        self._total[p] += 1
        self._alive[p] += 1
        # Boxes nest along the path, so a point inside the leaf box is
        # inside every ancestor box — the common case for in-distribution
        # arrivals skips the box maintenance entirely.
        leaf_min, leaf_max = self._box_min[node], self._box_max[node]
        if (vec < leaf_min).any() or (vec > leaf_max).any():
            self._box_min[p] = np.minimum(self._box_min[p], vec)
            self._box_max[p] = np.maximum(self._box_max[p], vec)
        self._bucket_append(node, slot)
        if self._bucket_len[node] > self._leaf_capacity:
            self._split_leaf(node)

    def insert_many(self, ids: Iterable[int], points: ArrayLike) -> None:
        """Insert a whole batch, routing all points level-by-level.

        Equivalent to calling :meth:`insert` per row, but the descent,
        box absorption, and counter updates run as array operations over
        the batch (one wave per tree level), and overflowing leaves are
        rebuilt once at the end instead of splitting per arrival.
        """
        pts = as_point_matrix(points)
        ids = np.asarray(list(ids), dtype=np.intp)
        if ids.shape[0] != pts.shape[0]:
            raise ValueError("ids and points must have equal length")
        if pts.shape[1] != self._d:
            raise ValueError(f"points have d={pts.shape[1]}, expected {self._d}")
        if ids.shape[0] == 0:
            return
        uniq = np.unique(ids)
        if uniq.size != ids.size:
            raise KeyError("duplicate tuple ids in batch")
        if not self._slot_of.keys().isdisjoint(ids.tolist()):
            dup = next(int(t) for t in ids if int(t) in self._slot_of)
            raise KeyError(f"tuple id {dup} already present")
        if ids.shape[0] < 8:
            # Tiny batches: the wave machinery costs more than it saves.
            for tid, vec in zip(ids, pts):
                self.insert(int(tid), vec)
            return
        slots = self._new_slots(ids, pts)
        # Route every point to its leaf, one vectorized wave per level.
        cur = np.zeros(ids.size, dtype=np.intp)
        active = np.arange(ids.size)
        while active.size:
            nodes = cur[active]
            np.add.at(self._total, nodes, 1)
            np.add.at(self._alive, nodes, 1)
            np.minimum.at(self._box_min, nodes, pts[active])
            np.maximum.at(self._box_max, nodes, pts[active])
            ax = self._axis[nodes]
            internal = ax >= 0
            desc = active[internal]
            if desc.size:
                a = ax[internal]
                at = cur[desc]
                go_right = pts[desc, a] > self._split[at]
                cur[desc] = np.where(go_right, self._right[at], self._left[at])
            active = desc
        # Append each leaf's arrivals in one go; rebuild overflowing leaves.
        order = np.argsort(cur, kind="stable")
        leaf_ids = cur[order]
        starts = np.flatnonzero(np.r_[True, leaf_ids[1:] != leaf_ids[:-1]])
        bounds = np.r_[starts, leaf_ids.size]
        for s, e in zip(bounds[:-1], bounds[1:]):
            leaf = int(leaf_ids[s])
            group = slots[order[s:e]]
            self._bucket_extend(leaf, group)
            if self._bucket_len[leaf] > self._leaf_capacity:
                self._build_into(leaf, self._bucket_view(leaf).copy(),
                                 int(self._parent[leaf]))

    def delete(self, tuple_id: int) -> None:
        """Remove ``tuple_id``; rebuilds decayed subtrees opportunistically."""
        slot = self._slot_of.pop(int(tuple_id), None)
        if slot is None:
            raise KeyError(f"tuple id {tuple_id} not present")
        leaf = int(self._leaf_of_slot[slot])
        self._bucket_remove(leaf, slot)
        self._free_slots.append(slot)
        # ``alive`` drops immediately; ``total`` only resets on rebuild, so
        # the ratio measures decay since the subtree was last built. The
        # walk decrements and decay-checks inline — scalar reads on the
        # short leaf-to-root path beat gather/scatter array ops here.
        parent, alive, total = self._parent, self._alive, self._total
        cap = self._leaf_capacity
        node = leaf
        rebuild_candidate = -1
        while node >= 0:
            a = int(alive[node]) - 1
            alive[node] = a
            t = int(total[node])
            # Highest decayed node wins (the walk ends at the root).
            if a * 2 < t and t > cap:
                rebuild_candidate = node
            node = int(parent[node])
        if rebuild_candidate >= 0:
            alive_slots = self._collect_alive(rebuild_candidate)
            self._free_subtree_children(rebuild_candidate)
            self._build_into(rebuild_candidate, alive_slots,
                             int(self._parent[rebuild_candidate]))

    def delete_many(self, tuple_ids: Iterable[int]) -> None:
        """Remove a whole batch of ids; one decay-rebuild pass at the end.

        Query-equivalent to calling :meth:`delete` per id: the alive
        point set is identical, and rebuild timing only affects internal
        structure, which queries cannot observe (their output is sorted
        by (score, id)). Bucket removal and the leaf-to-root counter
        decrements run once per *leaf* instead of once per point, and
        decayed subtrees are rebuilt once after all removals. The call
        is atomic: if any id is absent or duplicated, nothing changes.
        """
        ids = np.asarray(list(tuple_ids), dtype=np.intp)
        if ids.size == 0:
            return
        if ids.size < 4:
            # Tiny batches: the grouping machinery costs more than it
            # saves (still atomic — validate before mutating).
            if np.unique(ids).size != ids.size:
                raise KeyError("duplicate tuple ids in batch")
            missing = [int(t) for t in ids if int(t) not in self._slot_of]
            if missing:
                raise KeyError(f"tuple id {missing[0]} not present")
            for tid in ids.tolist():
                self.delete(tid)
            return
        if np.unique(ids).size != ids.size:
            raise KeyError("duplicate tuple ids in batch")
        slots = np.empty(ids.size, dtype=np.intp)
        for pos, tid in enumerate(ids.tolist()):
            slot = self._slot_of.get(tid)
            if slot is None:
                raise KeyError(f"tuple id {tid} not present")
            slots[pos] = slot
        for tid in ids.tolist():
            del self._slot_of[tid]
        self._free_slots.extend(slots.tolist())
        parent, alive, total = self._parent, self._alive, self._total
        cap = self._leaf_capacity
        leaves = self._leaf_of_slot[slots]
        order = np.argsort(leaves, kind="stable")
        leaves_s, slots_s = leaves[order], slots[order]
        starts = np.flatnonzero(np.r_[True, leaves_s[1:] != leaves_s[:-1]])
        bounds = np.r_[starts, leaves_s.size]
        # O(1) victim test per bucket entry (np.isin would pay a sort
        # per leaf): one boolean array over the slot pool.
        victim = np.zeros(self._pts.shape[0], dtype=bool)
        victim[slots] = True
        decayed: dict[int, None] = {}
        for s, e in zip(bounds[:-1], bounds[1:]):
            leaf = int(leaves_s[s])
            group = slots_s[s:e]
            n = int(self._bucket_len[leaf])
            bucket = self._buckets[leaf]
            keep = bucket[:n][~victim[bucket[:n]]]
            bucket[: keep.size] = keep
            self._bucket_len[leaf] = keep.size
            self._leaf_of_slot[group] = -1
            cnt = int(e - s)
            node = leaf
            while node >= 0:
                a = int(alive[node]) - cnt
                alive[node] = a
                t = int(total[node])
                if a * 2 < t and t > cap:
                    decayed.setdefault(node, None)
                node = int(parent[node])
        # Rebuild shallowest decayed nodes first; anything inside an
        # already-rebuilt subtree re-checks its (now reset) decay and is
        # skipped, as are node ids recycled by an earlier rebuild.
        def _depth(node: int) -> int:
            d = 0
            while parent[node] >= 0:
                node = int(parent[node])
                d += 1
            return d

        freed_mark = len(self._free_nodes)
        for node in sorted(decayed, key=_depth):
            if node in self._free_nodes[freed_mark:]:
                continue  # recycled by an earlier rebuild this pass
            a, t = int(alive[node]), int(total[node])
            if not (a * 2 < t and t > cap):
                continue
            alive_slots = self._collect_alive(node)
            self._free_subtree_children(node)
            self._build_into(node, alive_slots, int(parent[node]))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(self, u: ArrayLike, k: int) -> tuple[IndexArray, FloatArray]:
        """Best-first top-k by inner product with nonnegative ``u``.

        Returns ``(ids, scores)`` sorted best-first with ties broken
        toward smaller ids, matching ``Database.top_k``.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        if k < 1 or self._alive[0] == 0:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        k = min(int(k), int(self._alive[0]))
        frontier = np.zeros(1, dtype=np.intp)
        bounds = self._box_max[frontier] @ u
        best_ids = np.empty(0, dtype=np.intp)
        best_scores = np.empty(0)
        kth = -np.inf
        while frontier.size:
            if best_ids.size == k:
                keep = bounds >= kth
                frontier, bounds = frontier[keep], bounds[keep]
                if not frontier.size:
                    break
            # Expand the best-bound nodes of this wave; the rest wait.
            order = np.argsort(-bounds, kind="stable")
            take, rest = order[:_TOPK_WAVE], order[_TOPK_WAVE:]
            sel = frontier[take]
            frontier, bounds = frontier[rest], bounds[rest]
            leaf_mask = self._axis[sel] < 0
            leaves, internals = sel[leaf_mask], sel[~leaf_mask]
            if leaves.size:
                slots = np.concatenate(
                    [self._bucket_view(int(n)) for n in leaves])
                if slots.size:
                    cand_scores = self._pts[slots] @ u
                    all_scores = np.concatenate([best_scores, cand_scores])
                    all_ids = np.concatenate([best_ids, self._ids[slots]])
                    top = np.lexsort((all_ids, -all_scores))[:k]
                    best_scores, best_ids = all_scores[top], all_ids[top]
                    if best_ids.size == k:
                        kth = best_scores[-1]
            if internals.size:
                kids = np.concatenate(
                    [self._left[internals], self._right[internals]])
                kids = kids[self._alive[kids] > 0].astype(np.intp)
                if kids.size:
                    kid_bounds = self._box_max[kids] @ u
                    if best_ids.size == k:
                        ok = kid_bounds >= kth
                        kids, kid_bounds = kids[ok], kid_bounds[ok]
                    frontier = np.concatenate([frontier, kids])
                    bounds = np.concatenate([bounds, kid_bounds])
        return best_ids, best_scores

    def range_query(self, u: ArrayLike,
                    threshold: float) -> tuple[IndexArray, FloatArray]:
        """All ids with ``<u, p> >= threshold``; returns ``(ids, scores)``.

        Output is sorted by descending score, ties toward smaller id.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        threshold = float(threshold)
        hit_slots: list[IndexArray] = []
        frontier = np.zeros(1, dtype=np.intp) if self._alive[0] > 0 \
            else np.empty(0, dtype=np.intp)
        while frontier.size:
            bounds = self._box_max[frontier] @ u
            frontier = frontier[bounds >= threshold]
            if not frontier.size:
                break
            leaf_mask = self._axis[frontier] < 0
            for n in frontier[leaf_mask]:
                if self._bucket_len[n]:
                    hit_slots.append(self._bucket_view(int(n)))
            internals = frontier[~leaf_mask]
            if internals.size:
                kids = np.concatenate(
                    [self._left[internals], self._right[internals]])
                frontier = kids[self._alive[kids] > 0].astype(np.intp)
            else:
                frontier = np.empty(0, dtype=np.intp)
        if not hit_slots:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        slots = np.concatenate(hit_slots)
        scores = self._pts[slots] @ u
        ok = scores >= threshold
        slots, scores = slots[ok], scores[ok]
        if not slots.size:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        ids = self._ids[slots]
        order = np.lexsort((ids, -scores))
        return ids[order], scores[order]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Flat-array snapshot of the full tree state (checkpointing).

        Node arrays are trimmed to the allocated prefix, leaf buckets are
        packed CSR-style, and both free lists are kept in their exact
        order (``.pop()`` recycles the *last* entry, so the order shapes
        future allocations and is part of restore fidelity).
        """
        n, ns = self._n_nodes, self._n_slots
        lens = self._bucket_len[:n]
        has_bucket = np.asarray([b is not None for b in self._buckets[:n]],
                                dtype=bool)
        flat = [self._buckets[i][: int(lens[i])]
                for i in np.flatnonzero(has_bucket).tolist()]
        bucket_flat = (np.concatenate(flat) if flat
                       else np.empty(0, dtype=np.intp))
        return {
            "d": np.int64(self._d),
            "leaf_capacity": np.int64(self._leaf_capacity),
            "axis": self._axis[:n].copy(),
            "split": self._split[:n].copy(),
            "left": self._left[:n].copy(),
            "right": self._right[:n].copy(),
            "parent": self._parent[:n].copy(),
            "box_min": self._box_min[:n].copy(),
            "box_max": self._box_max[:n].copy(),
            "total": self._total[:n].copy(),
            "alive": self._alive[:n].copy(),
            "bucket_len": lens.copy(),
            "has_bucket": has_bucket,
            "bucket_flat": bucket_flat,
            "free_nodes": np.asarray(self._free_nodes, dtype=np.int64),
            "pts": self._pts[:ns].copy(),
            "ids": self._ids[:ns].copy(),
            "leaf_of_slot": self._leaf_of_slot[:ns].copy(),
            "free_slots": np.asarray(self._free_slots, dtype=np.int64),
        }

    @classmethod
    def from_state(cls, state) -> "KDTree":
        """Rebuild a tree from :meth:`export_state` arrays.

        The restored instance is physically identical to the exported
        one (same node layout, bucket contents, free-list order), so
        every future operation takes exactly the same path.
        """
        tree = cls(int(state["d"]),
                   leaf_capacity=int(state["leaf_capacity"]))
        axis = np.asarray(state["axis"], dtype=np.int32).copy()
        n = axis.shape[0]
        if n < 1:
            raise ValueError("kdtree state must hold at least the root")
        tree._axis = axis
        tree._split = np.asarray(state["split"], dtype=np.float64).copy()
        tree._left = np.asarray(state["left"], dtype=np.int32).copy()
        tree._right = np.asarray(state["right"], dtype=np.int32).copy()
        tree._parent = np.asarray(state["parent"], dtype=np.int32).copy()
        tree._box_min = np.ascontiguousarray(state["box_min"],
                                             dtype=np.float64).copy()
        tree._box_max = np.ascontiguousarray(state["box_max"],
                                             dtype=np.float64).copy()
        tree._total = np.asarray(state["total"], dtype=np.int64).copy()
        tree._alive = np.asarray(state["alive"], dtype=np.int64).copy()
        lens = np.asarray(state["bucket_len"], dtype=np.int64).copy()
        tree._bucket_len = lens
        has_bucket = np.asarray(state["has_bucket"], dtype=bool)
        flat = np.asarray(state["bucket_flat"], dtype=np.intp)
        tree._buckets = [None] * n
        pos = 0
        for i in np.flatnonzero(has_bucket).tolist():
            ln = int(lens[i])
            bucket = np.empty(max(ln, tree._leaf_capacity + 1),
                              dtype=np.intp)
            bucket[:ln] = flat[pos:pos + ln]
            pos += ln
            tree._buckets[i] = bucket
        tree._n_nodes = n
        tree._free_nodes = [int(x) for x in state["free_nodes"]]
        pts = np.ascontiguousarray(state["pts"], dtype=np.float64).copy()
        tree._pts = pts
        tree._ids = np.asarray(state["ids"], dtype=np.intp).copy()
        tree._leaf_of_slot = np.asarray(state["leaf_of_slot"],
                                        dtype=np.int32).copy()
        tree._n_slots = pts.shape[0]
        tree._free_slots = [int(x) for x in state["free_slots"]]
        # Live slots are exactly those sitting in a leaf bucket.
        tree._slot_of = {int(tree._ids[s]): s
                         for s in np.flatnonzero(
                             tree._leaf_of_slot >= 0).tolist()}
        return tree

    # ------------------------------------------------------------------
    # Internals — point pool
    # ------------------------------------------------------------------
    def _new_slot(self, tuple_id: int, vec: FloatArray) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            if self._n_slots == self._pts.shape[0]:
                self._grow_pool(self._n_slots + 1)
            slot = self._n_slots
            self._n_slots += 1
        self._pts[slot] = vec
        self._ids[slot] = tuple_id
        self._slot_of[tuple_id] = slot
        return slot

    def _new_slots(self, ids: IndexArray, pts: FloatArray) -> IndexArray:
        n = ids.shape[0]
        slots = np.empty(n, dtype=np.intp)
        reuse = min(len(self._free_slots), n)
        for i in range(reuse):
            slots[i] = self._free_slots.pop()
        fresh = n - reuse
        if fresh:
            self._grow_pool(self._n_slots + fresh)
            slots[reuse:] = np.arange(self._n_slots, self._n_slots + fresh)
            self._n_slots += fresh
        self._pts[slots] = pts
        self._ids[slots] = ids
        self._slot_of.update(zip(ids.tolist(), slots.tolist()))
        return slots

    def _grow_pool(self, need: int) -> None:
        cap = self._pts.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        pts = np.empty((new_cap, self._d), dtype=np.float64)
        pts[:cap] = self._pts
        self._pts = pts
        ids = np.empty(new_cap, dtype=np.intp)
        ids[:cap] = self._ids
        self._ids = ids
        leaf_of = np.full(new_cap, -1, dtype=np.int32)
        leaf_of[:cap] = self._leaf_of_slot
        self._leaf_of_slot = leaf_of

    # ------------------------------------------------------------------
    # Internals — node pool
    # ------------------------------------------------------------------
    def _alloc_node(self, parent: int) -> int:
        if self._free_nodes:
            idx = self._free_nodes.pop()
        else:
            if self._n_nodes == self._axis.shape[0]:
                self._grow_nodes()
            idx = self._n_nodes
            self._n_nodes += 1
        self._reset_node(idx, parent)
        return idx

    def _reset_node(self, idx: int, parent: int) -> None:
        self._axis[idx] = -1
        self._split[idx] = 0.0
        self._left[idx] = -1
        self._right[idx] = -1
        self._parent[idx] = parent
        self._box_min[idx] = np.inf
        self._box_max[idx] = -np.inf
        self._total[idx] = 0
        self._alive[idx] = 0
        self._buckets[idx] = None
        self._bucket_len[idx] = 0

    def _grow_nodes(self) -> None:
        cap = self._axis.shape[0]
        new_cap = 2 * cap
        def grow1(arr: AnyArray, fill: float) -> AnyArray:
            out = np.full(new_cap, fill, dtype=arr.dtype)
            out[:cap] = arr
            return out
        self._axis = grow1(self._axis, -1)
        self._split = grow1(self._split, 0.0)
        self._left = grow1(self._left, -1)
        self._right = grow1(self._right, -1)
        self._parent = grow1(self._parent, -1)
        self._total = grow1(self._total, 0)
        self._alive = grow1(self._alive, 0)
        self._bucket_len = grow1(self._bucket_len, 0)
        for name, fill in (("_box_min", np.inf), ("_box_max", -np.inf)):
            arr = getattr(self, name)
            out = np.full((new_cap, self._d), fill, dtype=np.float64)
            out[:cap] = arr
            setattr(self, name, out)
        self._buckets.extend([None] * (new_cap - cap))

    # ------------------------------------------------------------------
    # Internals — leaf buckets
    # ------------------------------------------------------------------
    def _bucket_append(self, leaf: int, slot: int) -> None:
        bucket = self._buckets[leaf]
        n = int(self._bucket_len[leaf])
        if bucket is None:
            bucket = np.empty(max(self._leaf_capacity + 1, 4), dtype=np.intp)
            self._buckets[leaf] = bucket
        elif n == bucket.shape[0]:
            grown = np.empty(2 * n, dtype=np.intp)
            grown[:n] = bucket
            bucket = self._buckets[leaf] = grown
        bucket[n] = slot
        self._bucket_len[leaf] = n + 1
        self._leaf_of_slot[slot] = leaf

    def _bucket_extend(self, leaf: int, slots: IndexArray) -> None:
        bucket = self._buckets[leaf]
        n = int(self._bucket_len[leaf])
        need = n + slots.size
        if bucket is None or need > bucket.shape[0]:
            cap = max(need, self._leaf_capacity + 1,
                      2 * (bucket.shape[0] if bucket is not None else 0))
            grown = np.empty(cap, dtype=np.intp)
            if n:
                assert bucket is not None  # n > 0 implies an allocated bucket
                grown[:n] = bucket[:n]
            bucket = self._buckets[leaf] = grown
        bucket[n:need] = slots
        self._bucket_len[leaf] = need
        self._leaf_of_slot[slots] = leaf

    def _bucket_view(self, node: int) -> IndexArray:
        bucket = self._buckets[node]
        assert bucket is not None  # callers only pass populated leaves
        return bucket[: self._bucket_len[node]]

    def _bucket_remove(self, leaf: int, slot: int) -> None:
        bucket = self._buckets[leaf]
        n = int(self._bucket_len[leaf])
        assert bucket is not None  # only populated leaves reach here
        # Buckets are tiny; a list scan beats allocating a mask array.
        pos = bucket[:n].tolist().index(slot)
        bucket[pos] = bucket[n - 1]
        self._bucket_len[leaf] = n - 1
        self._leaf_of_slot[slot] = -1

    # ------------------------------------------------------------------
    # Internals — (re)building subtrees
    # ------------------------------------------------------------------
    def _build_into(self, node: int, slots: IndexArray, parent: int) -> None:
        """(Re)build the subtree rooted at ``node`` from ``slots``.

        Median split on the widest axis, recursing via an explicit stack;
        a group with no usable split (all points equal on the widest
        axis) stays an oversized leaf.
        """
        stack = [(node, slots, parent)]
        while stack:
            idx, group, par = stack.pop()
            self._reset_node(idx, par)
            n = group.size
            self._total[idx] = n
            self._alive[idx] = n
            if n == 0:
                self._buckets[idx] = np.empty(self._leaf_capacity + 1,
                                              dtype=np.intp)
                continue
            pts = self._pts[group]
            self._box_min[idx] = pts.min(axis=0)
            self._box_max[idx] = pts.max(axis=0)
            if n <= self._leaf_capacity:
                self._set_leaf(idx, group)
                continue
            axis = int(np.argmax(self._box_max[idx] - self._box_min[idx]))
            values = pts[:, axis]
            split = float(np.median(values))
            mask = values <= split
            n_left = int(mask.sum())
            if n_left == 0 or n_left == n:
                # Degenerate on the widest axis: keep as an oversized leaf.
                self._set_leaf(idx, group)
                continue
            left = self._alloc_node(idx)
            right = self._alloc_node(idx)
            self._axis[idx] = axis
            self._split[idx] = split
            self._left[idx] = left
            self._right[idx] = right
            stack.append((left, group[mask], idx))
            stack.append((right, group[~mask], idx))

    def _set_leaf(self, idx: int, group: IndexArray) -> None:
        bucket = np.empty(max(group.size, self._leaf_capacity + 1),
                          dtype=np.intp)
        bucket[: group.size] = group
        self._buckets[idx] = bucket
        self._bucket_len[idx] = group.size
        self._leaf_of_slot[group] = idx

    def _split_leaf(self, leaf: int) -> None:
        n = int(self._bucket_len[leaf])
        slots = self._buckets[leaf][:n]
        pts = self._pts[slots]
        spread = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] == 0.0:
            return  # degenerate: defer splitting until points differ
        split = float(np.median(pts[:, axis]))
        mask = pts[:, axis] <= split
        n_left = int(mask.sum())
        if n_left == 0 or n_left == n:
            return
        left = self._alloc_node(leaf)
        right = self._alloc_node(leaf)
        left_slots, right_slots = slots[mask].copy(), slots[~mask].copy()
        self._axis[leaf] = axis
        self._split[leaf] = split
        self._left[leaf] = left
        self._right[leaf] = right
        self._buckets[leaf] = None
        self._bucket_len[leaf] = 0
        self._build_into(left, left_slots, leaf)
        self._build_into(right, right_slots, leaf)

    def _collect_alive(self, node: int) -> IndexArray:
        out: list[IndexArray] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if self._axis[cur] < 0:
                n = int(self._bucket_len[cur])
                if n:
                    out.append(self._buckets[cur][:n].copy())
            else:
                stack.append(int(self._left[cur]))
                stack.append(int(self._right[cur]))
        if not out:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(out)

    def _free_subtree_children(self, node: int) -> None:
        """Recycle every node strictly below ``node`` into the free list."""
        if self._axis[node] < 0:
            return
        stack = [int(self._left[node]), int(self._right[node])]
        while stack:
            cur = stack.pop()
            if self._axis[cur] >= 0:
                stack.append(int(self._left[cur]))
                stack.append(int(self._right[cur]))
            self._buckets[cur] = None
            self._bucket_len[cur] = 0
            self._axis[cur] = -1
            self._free_nodes.append(cur)
