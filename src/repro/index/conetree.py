"""An angular cone tree over utility vectors (utility index UI).

FD-RMS keeps one ε-approximate top-k threshold ``τ_i`` per sampled
utility vector ``u_i``. When a tuple ``p`` is inserted, only the
utilities with ``<u_i, p> >= τ_i`` need their top-k sets refreshed.
The cone tree (Ram & Gray [25], as adapted in §III-C of the paper)
clusters utilities by direction so whole subtrees can be pruned with the
classic max-inner-product cone bound:

    max_{u in cone} <u, p>  <=  ||p|| * cos(max(0, angle(c, p) - ω))

where ``c`` is the cone axis and ``ω`` its apex half-angle. A subtree is
pruned when that bound is below the *minimum* threshold stored in the
subtree, so the tree maintains ``τ_min`` per node and updates it along
the leaf-to-root path whenever a threshold changes.

Utilities can also be *deactivated* (FD-RMS only uses the first ``m`` of
its ``M`` samples); inactive utilities never match and contribute
``+inf`` to ``τ_min``.

Storage layout
--------------
The structure is built once and never changes shape, which makes it a
perfect fit for a **flat structure-of-arrays**: per-node cone axes in one
``(n_nodes, d)`` matrix, ``cos ω``/``sin ω``/``τ_min`` in parallel
vectors, child/parent links as integer arrays, and the leaf membership
as ONE pooled index array with per-leaf ``(start, end)`` slices assigned
in build order. :meth:`reached_by` expands a frontier of node ids in
vectorized waves — the cone bounds for the whole frontier come from a
single gathered mat-vec — instead of per-node Python recursion, and
:meth:`set_thresholds` repairs ``τ_min`` for a whole batch of changed
utilities in one bottom-up sweep over the affected nodes.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro._types import AnyArray, BoolArray, FloatArray, IndexArray

_LEAF_CAPACITY = 8


class ConeTree:
    """Static-structure cone tree with dynamic thresholds and active flags.

    Parameters
    ----------
    utilities : (M, d) array of unit vectors
        The fixed pool of sampled utility vectors. Structure is built
        once; thresholds and active flags change freely afterwards.
    leaf_capacity : int
        Maximum number of utilities per leaf.
    """

    def __init__(self, utilities: ArrayLike, *,
                 leaf_capacity: int = _LEAF_CAPACITY) -> None:
        utils = np.ascontiguousarray(utilities, dtype=np.float64)
        if utils.ndim != 2 or utils.shape[0] == 0:
            raise ValueError("utilities must be a non-empty (M, d) array")
        norms = np.linalg.norm(utils, axis=1)
        if not np.allclose(norms, 1.0, atol=1e-8):
            raise ValueError("utility vectors must be unit-normalized")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self._u = utils
        self._m_total = utils.shape[0]
        self._d = utils.shape[1]
        self._leaf_capacity = int(leaf_capacity)
        self._tau = np.full(self._m_total, np.inf)
        self._active = np.zeros(self._m_total, dtype=bool)
        # --- flat node arrays, filled by _build ---
        nodes_cap = max(4, 4 * (self._m_total // max(1, leaf_capacity) + 1))
        self._axis_dir = np.empty((nodes_cap, self._d))
        self._cos_omega = np.ones(nodes_cap)
        self._sin_omega = np.zeros(nodes_cap)
        self._tau_min = np.full(nodes_cap, np.inf)
        self._left = np.full(nodes_cap, -1, dtype=np.int32)
        self._right = np.full(nodes_cap, -1, dtype=np.int32)
        self._parent = np.full(nodes_cap, -1, dtype=np.int32)
        self._mem_start = np.zeros(nodes_cap, dtype=np.int64)  # leaf slice
        self._mem_end = np.zeros(nodes_cap, dtype=np.int64)
        self._is_leaf = np.zeros(nodes_cap, dtype=bool)
        self._member_pool = np.empty(self._m_total, dtype=np.intp)
        self._leaf_of = np.full(self._m_total, -1, dtype=np.int32)
        self._n_nodes = 0
        self._pool_fill = 0
        self._build(np.arange(self._m_total))
        assert self._pool_fill == self._m_total
        self._trim()

    # ------------------------------------------------------------------
    # Threshold / activity maintenance
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of utility vectors in the pool (active or not)."""
        return self._m_total

    def threshold(self, idx: int) -> float:
        """Current threshold of utility ``idx`` (``inf`` while inactive)."""
        return float(self._tau[idx])

    def thresholds(self) -> FloatArray:
        """Read-only view of all thresholds (``inf`` marks inactive).

        Batch callers compare a precomputed score row against this
        vector instead of traversing the tree once per tuple.
        """
        view = self._tau.view()
        view.flags.writeable = False
        return view

    def active_mask(self) -> BoolArray:
        """Read-only view of the active flags."""
        view = self._active.view()
        view.flags.writeable = False
        return view

    def is_active(self, idx: int) -> bool:
        return bool(self._active[idx])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Dynamic state only: the static tree is a pure function of the
        utility matrix, so restore rebuilds it and re-installs τ."""
        return {
            "tau": self._tau.copy(),
            "active": self._active.copy(),
        }

    def restore_state(self, state) -> None:
        """Install thresholds/activity from :meth:`export_state`."""
        tau = np.asarray(state["tau"], dtype=np.float64)
        active = np.asarray(state["active"], dtype=bool)
        if tau.shape != (self._m_total,) or active.shape != (self._m_total,):
            raise ValueError("cone state does not match this utility pool")
        self._tau[:] = tau
        self._active[:] = active
        self._recompute_tau_min()

    def set_threshold(self, idx: int, tau: float) -> None:
        """Set utility ``idx``'s threshold and repair ``τ_min`` upwards."""
        tau = float(tau)
        # reprolint: disable=RPL002 -- exact write-back identity (skip if unchanged)
        if self._tau[idx] == tau:
            return  # τ_min already consistent
        self._tau[idx] = tau
        if self._active[idx]:
            self._bubble_up(int(self._leaf_of[idx]))

    def set_thresholds(self, idxs: ArrayLike, taus: ArrayLike) -> None:
        """Batch :meth:`set_threshold`: one bottom-up ``τ_min`` repair.

        ``idxs``/``taus`` are aligned arrays; inactive utilities get
        their ``τ`` recorded but do not trigger repairs (as in the
        scalar method), and leaves shared by several changed utilities
        bubble once instead of once per utility.
        """
        idxs = np.asarray(idxs, dtype=np.intp).reshape(-1)
        taus = np.asarray(taus, dtype=np.float64).reshape(-1)
        if idxs.shape != taus.shape:
            raise ValueError("idxs and taus must be aligned")
        if idxs.size == 0:
            return
        # reprolint: disable=RPL002 -- exact write-back identity (skip if unchanged)
        changed = self._tau[idxs] != taus
        idxs, taus = idxs[changed], taus[changed]
        if idxs.size == 0:
            return
        self._tau[idxs] = taus
        active = self._active[idxs]
        if idxs.size == 1:
            if active[0]:
                self._bubble_up(int(self._leaf_of[idxs[0]]))
            return
        for leaf in np.unique(self._leaf_of[idxs[active]]):
            self._bubble_up(int(leaf))

    def activate(self, idx: int, tau: float) -> None:
        """Mark utility ``idx`` active with threshold ``tau``."""
        self._active[idx] = True
        self._tau[idx] = float(tau)
        self._bubble_up(int(self._leaf_of[idx]))

    def activate_many(self, idxs: ArrayLike, taus: ArrayLike) -> None:
        """Bulk :meth:`activate`: one bottom-up ``τ_min`` rebuild.

        The cold-start path activates every utility at once; repairing
        ``τ_min`` leaf-by-leaf would bubble the same root path M times,
        so instead the whole vector is recomputed in a single sweep.
        """
        idxs = np.asarray(idxs, dtype=np.intp).reshape(-1)
        taus = np.asarray(taus, dtype=np.float64).reshape(-1)
        if idxs.shape != taus.shape:
            raise ValueError("idxs and taus must be aligned")
        self._active[idxs] = True
        self._tau[idxs] = taus
        self._recompute_tau_min()

    def _recompute_tau_min(self) -> None:
        """Rebuild every node's ``τ_min`` bottom-up in one pass."""
        n = self._n_nodes
        eff = np.where(self._active, self._tau, np.inf)
        pool_vals = eff[self._member_pool]
        leaves = np.flatnonzero(self._is_leaf[:n])
        # Leaf slices partition the member pool; reduceat needs them in
        # pool order (= leaf creation order, not node-id order).
        leaves = leaves[np.argsort(self._mem_start[leaves], kind="stable")]
        if leaves.size:
            nonempty = self._mem_end[leaves] > self._mem_start[leaves]
            mins = np.minimum.reduceat(pool_vals,
                                       self._mem_start[leaves[nonempty]]) \
                if nonempty.any() else np.empty(0)
            self._tau_min[leaves[nonempty]] = mins
            self._tau_min[leaves[~nonempty]] = np.inf
        tau_min, left, right = self._tau_min, self._left, self._right
        is_leaf = self._is_leaf
        # Children are allocated after their parent (pre-order), so a
        # reverse scan sees both children before every internal node.
        for node in range(n - 1, -1, -1):
            if not is_leaf[node]:
                l, r = tau_min[left[node]], tau_min[right[node]]
                tau_min[node] = l if l < r else r

    def deactivate(self, idx: int) -> None:
        """Mark utility ``idx`` inactive (it will never match queries)."""
        self._active[idx] = False
        self._tau[idx] = np.inf
        self._bubble_up(int(self._leaf_of[idx]))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reached_by(self, point: ArrayLike) -> list[int]:
        """Active utility indices with ``<u_i, point> >= τ_i``.

        This is the insertion-time filter of Algorithm 3: utilities whose
        ε-approximate top-k set must absorb the new point.
        """
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        if p.shape[0] != self._d:
            raise ValueError(f"point has d={p.shape[0]}, expected {self._d}")
        p_norm = float(np.linalg.norm(p))
        if p_norm == 0.0:
            # Zero point scores 0 for every utility; it reaches only
            # thresholds <= 0.
            return [int(i) for i in
                    np.flatnonzero(self._active & (self._tau <= 0.0))]
        p_dir = p / p_norm
        candidates: list[IndexArray] = []
        # reprolint: disable=RPL002 -- +inf sentinel check, exact by construction
        if self._tau_min[0] != np.inf:
            frontier = np.zeros(1, dtype=np.intp)
        else:
            frontier = np.empty(0, np.intp)
        while frontier.size:
            # Cone bound for the whole frontier in one gathered mat-vec.
            cos_t = np.clip(self._axis_dir[frontier] @ p_dir, -1.0, 1.0)
            sin_t = np.sqrt(np.maximum(0.0, 1.0 - cos_t * cos_t))
            cos_w = self._cos_omega[frontier]
            cos_gap = cos_t * cos_w + sin_t * self._sin_omega[frontier]
            bound = p_norm * np.where(cos_t >= cos_w, 1.0, cos_gap)
            frontier = frontier[bound >= self._tau_min[frontier]]
            if not frontier.size:
                break
            leaf_mask = self._is_leaf[frontier]
            for n in frontier[leaf_mask]:
                candidates.append(
                    self._member_pool[self._mem_start[n]:self._mem_end[n]])
            internals = frontier[~leaf_mask]
            if internals.size:
                kids = np.concatenate(
                    [self._left[internals], self._right[internals]])
                # reprolint: disable=RPL002 -- +inf sentinel check, exact by construction
                frontier = kids[self._tau_min[kids] != np.inf].astype(np.intp)
            else:
                break
        if not candidates:
            return []
        members = np.concatenate(candidates)
        scores = self._u[members] @ p
        hits = members[self._active[members] & (scores >= self._tau[members])]
        hits.sort()
        return [int(i) for i in hits]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _alloc_node(self, parent: int) -> int:
        idx = self._n_nodes
        if idx == self._left.shape[0]:
            self._grow_nodes()
        self._n_nodes += 1
        self._parent[idx] = parent
        return idx

    def _grow_nodes(self) -> None:
        cap = self._left.shape[0]
        new_cap = 2 * cap
        def grow1(arr: AnyArray, fill: float) -> AnyArray:
            out = np.full(new_cap, fill, dtype=arr.dtype)
            out[:cap] = arr
            return out
        self._cos_omega = grow1(self._cos_omega, 1.0)
        self._sin_omega = grow1(self._sin_omega, 0.0)
        self._tau_min = grow1(self._tau_min, np.inf)
        self._left = grow1(self._left, -1)
        self._right = grow1(self._right, -1)
        self._parent = grow1(self._parent, -1)
        self._mem_start = grow1(self._mem_start, 0)
        self._mem_end = grow1(self._mem_end, 0)
        self._is_leaf = grow1(self._is_leaf, False)
        axis = np.empty((new_cap, self._d))
        axis[:cap] = self._axis_dir
        self._axis_dir = axis

    def _trim(self) -> None:
        """Shrink node arrays to the built size (structure is static)."""
        n = self._n_nodes
        self._axis_dir = np.ascontiguousarray(self._axis_dir[:n])
        self._cos_omega = self._cos_omega[:n].copy()
        self._sin_omega = self._sin_omega[:n].copy()
        self._tau_min = self._tau_min[:n].copy()
        self._left = self._left[:n].copy()
        self._right = self._right[:n].copy()
        self._parent = self._parent[:n].copy()
        self._mem_start = self._mem_start[:n].copy()
        self._mem_end = self._mem_end[:n].copy()
        self._is_leaf = self._is_leaf[:n].copy()

    def _build(self, members: IndexArray) -> None:
        """Bulk-build the tree over ``members`` with an explicit stack.

        Same construction as Ram & Gray: the cone axis is the normalized
        mean direction, and splits seed a 2-means style partition around
        the two most separated members. The stack visits nodes in
        pre-order (parent, full left subtree, right subtree), matching
        the numbering the recursive formulation would assign, without
        Python recursion depth limits on skewed splits.
        """
        stack: list[tuple[IndexArray, int, bool]] = [(members, -1, False)]
        while stack:
            group, parent, is_right = stack.pop()
            node = self._alloc_node(parent)
            if parent >= 0:
                if is_right:
                    self._right[parent] = node
                else:
                    self._left[parent] = node
            vecs = self._u[group]
            mean = vecs.mean(axis=0)
            norm = float(np.linalg.norm(mean))
            axis_dir = mean / norm if norm > 0 else vecs[0]
            self._axis_dir[node] = axis_dir
            cosines = np.clip(vecs @ axis_dir, -1.0, 1.0)
            cos_w = float(cosines.min())
            self._cos_omega[node] = cos_w
            self._sin_omega[node] = float(
                np.sqrt(max(0.0, 1.0 - cos_w * cos_w)))
            if group.size <= self._leaf_capacity:
                self._set_leaf(node, group)
                continue
            # Split around the two most separated members (2-means style
            # seed selection), assigning by nearer angular seed.
            far_a = int(np.argmin(cosines))
            cos_to_a = np.clip(vecs @ vecs[far_a], -1.0, 1.0)
            far_b = int(np.argmin(cos_to_a))
            cos_to_b = np.clip(vecs @ vecs[far_b], -1.0, 1.0)
            go_left = cos_to_a >= cos_to_b
            if go_left.all() or not go_left.any():
                self._set_leaf(node, group)
                continue
            # LIFO: push right first so the left subtree is numbered
            # (and its leaves pooled) entirely before the right one.
            stack.append((group[~go_left], node, True))
            stack.append((group[go_left], node, False))

    def _set_leaf(self, node: int, members: IndexArray) -> int:
        start = self._pool_fill
        end = start + members.size
        self._member_pool[start:end] = members
        self._pool_fill = end
        self._mem_start[node] = start
        self._mem_end[node] = end
        self._is_leaf[node] = True
        self._leaf_of[members] = node
        return node

    def _bubble_up(self, leaf: int) -> None:
        """Recompute ``τ_min`` from ``leaf`` towards the root.

        Stops as soon as a node's recomputed ``τ_min`` is unchanged —
        every ancestor's value is then unchanged too.
        """
        tau_min, parent = self._tau_min, self._parent
        node = leaf
        while node >= 0:
            if self._is_leaf[node]:
                members = self._member_pool[
                    self._mem_start[node]:self._mem_end[node]]
                taus = np.where(self._active[members],
                                self._tau[members], np.inf)
                fresh = taus.min() if taus.size else np.inf
            else:
                l = tau_min[self._left[node]]
                r = tau_min[self._right[node]]
                fresh = l if l < r else r
            # reprolint: disable=RPL002 -- exact write-back identity (skip if unchanged)
            if fresh == tau_min[node]:
                return
            tau_min[node] = fresh
            node = int(parent[node])
