"""An angular cone tree over utility vectors (utility index UI).

FD-RMS keeps one ε-approximate top-k threshold ``τ_i`` per sampled
utility vector ``u_i``. When a tuple ``p`` is inserted, only the
utilities with ``<u_i, p> >= τ_i`` need their top-k sets refreshed.
The cone tree (Ram & Gray [25], as adapted in §III-C of the paper)
clusters utilities by direction so whole subtrees can be pruned with the
classic max-inner-product cone bound:

    max_{u in cone} <u, p>  <=  ||p|| * cos(max(0, angle(c, p) - ω))

where ``c`` is the cone axis and ``ω`` its apex half-angle. A subtree is
pruned when that bound is below the *minimum* threshold stored in the
subtree, so the tree maintains ``τ_min`` per node and updates it along
the leaf-to-root path whenever a threshold changes.

Utilities can also be *deactivated* (FD-RMS only uses the first ``m`` of
its ``M`` samples); inactive utilities never match and contribute
``+inf`` to ``τ_min``.
"""

from __future__ import annotations

import numpy as np

_LEAF_CAPACITY = 8


class _ConeNode:
    __slots__ = ("axis_dir", "cos_omega", "sin_omega", "tau_min",
                 "left", "right", "parent", "members")

    def __init__(self, parent=None) -> None:
        self.axis_dir: np.ndarray | None = None
        self.cos_omega = 1.0
        self.sin_omega = 0.0
        self.tau_min = np.inf
        self.left: _ConeNode | None = None
        self.right: _ConeNode | None = None
        self.parent: _ConeNode | None = parent
        self.members: list[int] | None = None  # leaf only

    @property
    def is_leaf(self) -> bool:
        return self.members is not None


class ConeTree:
    """Static-structure cone tree with dynamic thresholds and active flags.

    Parameters
    ----------
    utilities : (M, d) array of unit vectors
        The fixed pool of sampled utility vectors. Structure is built
        once; thresholds and active flags change freely afterwards.
    leaf_capacity : int
        Maximum number of utilities per leaf.
    """

    def __init__(self, utilities, *, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        utils = np.ascontiguousarray(utilities, dtype=np.float64)
        if utils.ndim != 2 or utils.shape[0] == 0:
            raise ValueError("utilities must be a non-empty (M, d) array")
        norms = np.linalg.norm(utils, axis=1)
        if not np.allclose(norms, 1.0, atol=1e-8):
            raise ValueError("utility vectors must be unit-normalized")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self._u = utils
        self._m_total = utils.shape[0]
        self._d = utils.shape[1]
        self._leaf_capacity = int(leaf_capacity)
        self._tau = np.full(self._m_total, np.inf)
        self._active = np.zeros(self._m_total, dtype=bool)
        self._leaf_of: dict[int, _ConeNode] = {}
        self._root = self._build(list(range(self._m_total)), None)

    # ------------------------------------------------------------------
    # Threshold / activity maintenance
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of utility vectors in the pool (active or not)."""
        return self._m_total

    def threshold(self, idx: int) -> float:
        """Current threshold of utility ``idx`` (``inf`` while inactive)."""
        return float(self._tau[idx])

    def is_active(self, idx: int) -> bool:
        return bool(self._active[idx])

    def set_threshold(self, idx: int, tau: float) -> None:
        """Set utility ``idx``'s threshold and repair ``τ_min`` upwards."""
        self._tau[idx] = float(tau)
        if self._active[idx]:
            self._bubble_up(self._leaf_of[idx])

    def activate(self, idx: int, tau: float) -> None:
        """Mark utility ``idx`` active with threshold ``tau``."""
        self._active[idx] = True
        self._tau[idx] = float(tau)
        self._bubble_up(self._leaf_of[idx])

    def deactivate(self, idx: int) -> None:
        """Mark utility ``idx`` inactive (it will never match queries)."""
        self._active[idx] = False
        self._tau[idx] = np.inf
        self._bubble_up(self._leaf_of[idx])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reached_by(self, point) -> list[int]:
        """Active utility indices with ``<u_i, point> >= τ_i``.

        This is the insertion-time filter of Algorithm 3: utilities whose
        ε-approximate top-k set must absorb the new point.
        """
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        if p.shape[0] != self._d:
            raise ValueError(f"point has d={p.shape[0]}, expected {self._d}")
        p_norm = float(np.linalg.norm(p))
        hits: list[int] = []
        if p_norm == 0.0:
            # Zero point scores 0 for every utility; it reaches only
            # thresholds <= 0.
            for idx in np.flatnonzero(self._active):
                if self._tau[idx] <= 0.0:
                    hits.append(int(idx))
            return hits
        p_dir = p / p_norm
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.tau_min == np.inf:
                continue
            if self._cone_bound(node, p_dir, p_norm) < node.tau_min:
                continue
            if node.is_leaf:
                for idx in node.members:
                    if self._active[idx] and float(self._u[idx] @ p) >= self._tau[idx]:
                        hits.append(idx)
            else:
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
        hits.sort()
        return hits

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _cone_bound(node: _ConeNode, p_dir: np.ndarray, p_norm: float) -> float:
        """Upper bound of ``<u, p>`` over the node's cone (unit ``u``)."""
        cos_theta = float(np.clip(node.axis_dir @ p_dir, -1.0, 1.0))
        # cos(theta - omega) = cos t cos w + sin t sin w, clamped to 1 when
        # p_dir lies inside the cone (theta <= omega).
        sin_theta = float(np.sqrt(max(0.0, 1.0 - cos_theta * cos_theta)))
        if cos_theta >= node.cos_omega:
            return p_norm
        cos_gap = cos_theta * node.cos_omega + sin_theta * node.sin_omega
        return p_norm * cos_gap

    def _build(self, members: list[int], parent) -> _ConeNode:
        node = _ConeNode(parent)
        vecs = self._u[members]
        mean = vecs.mean(axis=0)
        norm = float(np.linalg.norm(mean))
        node.axis_dir = mean / norm if norm > 0 else vecs[0]
        cosines = np.clip(vecs @ node.axis_dir, -1.0, 1.0)
        cos_w = float(cosines.min())
        node.cos_omega = cos_w
        node.sin_omega = float(np.sqrt(max(0.0, 1.0 - cos_w * cos_w)))
        if len(members) <= self._leaf_capacity:
            node.members = list(members)
            for idx in members:
                self._leaf_of[idx] = node
            return node
        # Split around the two most separated members (2-means style seed
        # selection used by Ram & Gray), assigning by nearer angular seed.
        far_a = int(np.argmin(cosines))
        cos_to_a = np.clip(vecs @ vecs[far_a], -1.0, 1.0)
        far_b = int(np.argmin(cos_to_a))
        cos_to_b = np.clip(vecs @ vecs[far_b], -1.0, 1.0)
        go_left = cos_to_a >= cos_to_b
        left = [m for m, flag in zip(members, go_left) if flag]
        right = [m for m, flag in zip(members, go_left) if not flag]
        if not left or not right:
            node.members = list(members)
            for idx in members:
                self._leaf_of[idx] = node
            return node
        node.left = self._build(left, node)
        node.right = self._build(right, node)
        return node

    def _bubble_up(self, leaf: _ConeNode) -> None:
        """Recompute ``τ_min`` from ``leaf`` to the root."""
        node: _ConeNode | None = leaf
        while node is not None:
            if node.is_leaf:
                taus = [self._tau[i] for i in node.members if self._active[i]]
                node.tau_min = min(taus) if taus else np.inf
            else:
                node.tau_min = min(
                    node.left.tau_min if node.left is not None else np.inf,
                    node.right.tau_min if node.right is not None else np.inf,
                )
            node = node.parent
