"""Index substrates for the dual-tree top-k maintenance of §III-C.

``KDTree`` is the tuple index (TI): a k-d tree over the database points
supporting branch-and-bound max-inner-product top-k queries and
score-range queries under nonnegative utility vectors, with tombstone
deletions and amortized subtree rebuilds.

``ConeTree`` is the utility index (UI): an angular-partitioning tree over
the sampled utility vectors that, given a newly inserted point, finds
every utility whose ε-approximate top-k threshold the point reaches.
"""

from repro.index.kdtree import KDTree
from repro.index.conetree import ConeTree
from repro.index.quadtree import QuadTree

__all__ = ["KDTree", "ConeTree", "QuadTree"]
