"""A dynamic region quadtree (2^d-ary) as an alternative tuple index.

§III-C of the paper notes that *any* space-partitioning index — "e.g.,
k-d tree [7] and Quadtree [15]" — can serve as the tuple index TI. This
module provides the quadtree option with the same interface as
:class:`repro.index.kdtree.KDTree` (insert / delete / top_k /
range_query), so the top-k maintainer can be instantiated with either
(see ``ApproxTopKIndex(index_factory=...)``) and the ablation bench can
compare them.

Each internal node splits its hyper-rectangle at the center into ``2^d``
children (children are materialized lazily, only when points land in
them). Deletions remove points directly and prune empty subtrees; the
same ``⟨u, box_max⟩`` bound as the k-d tree drives search, since the
cell rectangles are exact by construction.

Quadtrees degrade combinatorially with dimension (2^d fanout), so the
default tuple index remains the k-d tree; the quadtree is practical for
``d <= ~8`` and exists for fidelity and comparison.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.utils import as_point_matrix

_MAX_DEPTH = 24
_LEAF_CAPACITY = 16


class _QNode:
    __slots__ = ("lo", "hi", "children", "bucket", "alive", "depth")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, depth: int) -> None:
        self.lo = lo
        self.hi = hi
        self.children: dict[int, _QNode] | None = None  # None while leaf
        self.bucket: list[int] = []
        self.alive = 0
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """Dynamic 2^d-ary region tree over ``[0, bound]^d`` points.

    Parameters
    ----------
    d : int
        Dimensionality (keep small; fanout is 2^d).
    bound : float
        Upper bound of the data domain per axis (points are validated
        against it). The paper's data is normalized to [0, 1].
    leaf_capacity : int
        Bucket size before a leaf subdivides.
    """

    def __init__(self, d: int, *, bound: float = 1.0,
                 leaf_capacity: int = _LEAF_CAPACITY) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self._d = int(d)
        self._bound = float(bound)
        self._leaf_capacity = int(leaf_capacity)
        self._points: dict[int, np.ndarray] = {}
        self._root = _QNode(np.zeros(d), np.full(d, bound), 0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, ids, points, *, bound: float = 1.0,
              leaf_capacity: int = _LEAF_CAPACITY) -> "QuadTree":
        pts = as_point_matrix(points)
        ids = np.asarray(list(ids), dtype=np.intp)
        if ids.shape[0] != pts.shape[0]:
            raise ValueError("ids and points must have equal length")
        bound = max(bound, float(pts.max(initial=0.0)) or 1.0)
        tree = cls(pts.shape[1], bound=bound, leaf_capacity=leaf_capacity)
        for row, tid in enumerate(ids):
            tree.insert(int(tid), pts[row])
        return tree

    def __len__(self) -> int:
        return self._root.alive

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._points

    @property
    def d(self) -> int:
        return self._d

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, tuple_id: int, point) -> None:
        if tuple_id in self._points:
            raise KeyError(f"tuple id {tuple_id} already present")
        vec = np.asarray(point, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._d:
            raise ValueError(f"point has d={vec.shape[0]}, expected {self._d}")
        if (vec < 0).any() or (vec > self._bound + 1e-12).any():
            raise ValueError(f"point outside [0, {self._bound}]^d domain")
        self._points[tuple_id] = vec.copy()
        node = self._root
        while True:
            node.alive += 1
            if node.is_leaf:
                break
            node = self._child_for(node, vec)
        node.bucket.append(tuple_id)
        if len(node.bucket) > self._leaf_capacity and node.depth < _MAX_DEPTH:
            self._subdivide(node)

    def delete(self, tuple_id: int) -> None:
        vec = self._points.pop(tuple_id, None)
        if vec is None:
            raise KeyError(f"tuple id {tuple_id} not present")
        node = self._root
        path = []
        while True:
            node.alive -= 1
            path.append(node)
            if node.is_leaf:
                break
            node = self._child_for(node, vec)
        node.bucket.remove(tuple_id)
        # Collapse hollow internal nodes back into leaves.
        for anc in reversed(path[:-1]):
            if anc.alive <= self._leaf_capacity and not anc.is_leaf:
                anc.bucket = self._collect(anc)
                anc.children = None

    # ------------------------------------------------------------------
    # Queries (same contracts as KDTree)
    # ------------------------------------------------------------------
    def top_k(self, u, k: int) -> tuple[np.ndarray, np.ndarray]:
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        if k < 1 or self._root.alive == 0:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        k = min(int(k), self._root.alive)
        counter = itertools.count()
        frontier = [(-float(self._root.hi @ u), next(counter), self._root)]
        best: list[tuple[float, int]] = []
        while frontier:
            neg_bound, _, node = heapq.heappop(frontier)
            if len(best) == k and -neg_bound < best[0][0]:
                break
            if node.is_leaf:
                for tid in node.bucket:
                    entry = (float(self._points[tid] @ u), -tid)
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                for _, child in sorted(node.children.items()):
                    if child.alive > 0:
                        bound = float(child.hi @ u)
                        if len(best) < k or bound >= best[0][0]:
                            heapq.heappush(frontier,
                                           (-bound, next(counter), child))
        ordered = sorted(best, key=lambda e: (-e[0], -e[1]))
        ids = np.asarray([-tid for _, tid in ordered], dtype=np.intp)
        scores = np.asarray([s for s, _ in ordered])
        return ids, scores

    def range_query(self, u, threshold: float) -> tuple[np.ndarray, np.ndarray]:
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        hits_ids: list[int] = []
        hits_scores: list[float] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.alive == 0 or float(node.hi @ u) < threshold:
                continue
            if node.is_leaf:
                for tid in node.bucket:
                    score = float(self._points[tid] @ u)
                    if score >= threshold:
                        hits_ids.append(tid)
                        hits_scores.append(score)
            else:
                stack.extend(child for _, child in sorted(node.children.items()))
        if not hits_ids:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        ids = np.asarray(hits_ids, dtype=np.intp)
        scores = np.asarray(hits_scores)
        order = np.lexsort((ids, -scores))
        return ids[order], scores[order]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _child_index(self, node: _QNode, vec: np.ndarray) -> int:
        mid = 0.5 * (node.lo + node.hi)
        idx = 0
        for axis in range(self._d):
            if vec[axis] > mid[axis]:
                idx |= 1 << axis
        return idx

    def _child_for(self, node: _QNode, vec: np.ndarray) -> _QNode:
        idx = self._child_index(node, vec)
        child = node.children.get(idx)
        if child is None:
            mid = 0.5 * (node.lo + node.hi)
            lo = node.lo.copy()
            hi = mid.copy()
            for axis in range(self._d):
                if idx >> axis & 1:
                    lo[axis] = mid[axis]
                    hi[axis] = node.hi[axis]
            child = _QNode(lo, hi, node.depth + 1)
            node.children[idx] = child
        return child

    def _subdivide(self, leaf: _QNode) -> None:
        ids = leaf.bucket
        leaf.bucket = []
        leaf.children = {}
        for tid in ids:
            vec = self._points[tid]
            child = self._child_for(leaf, vec)
            child.alive += 1
            child.bucket.append(tid)
        # Guard against all points identical: if one child got everything
        # it will re-split on its own insert path (depth-capped).

    def _collect(self, node: _QNode) -> list[int]:
        out: list[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.is_leaf:
                out.extend(cur.bucket)
            else:
                stack.extend(cur.children.values())
        return out
