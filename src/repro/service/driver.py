"""The supervised replay / service-simulation loop.

Glue between the scenario layer and the service layer:

* :class:`ServiceOptions` — one bag for everything a supervised run
  needs (supervisor config, optional chaos config, clock, checkpoint
  directory, read-traffic shape), so ``replay_trace``'s signature stays
  small.
* :class:`SupervisedDriver` — binds a :class:`ChaosInjector` to a
  :class:`SessionSupervisor` over one session and exposes the loop
  primitives: ``feed`` (submit + pump, with poison requests injected
  and *required* to be rejected), ``barrier`` (drain before snapshot
  marks — which is why supervised snapshots are byte-identical to
  unsupervised ones), reads, and the merged service report.
* :func:`simulate_service` — the ``repro serve-sim`` loop: replays a
  scenario trace as arrival ticks with per-tenant read traffic, and
  returns an SLO-oriented summary (admission percentiles, fresh/stale
  serves, chaos tallies, final state digest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.api.session import BatchValidationError, Session
from repro.service.chaos import ChaosConfig, ChaosInjector
from repro.service.clock import Clock, MonotonicClock
from repro.service.policy import SupervisorConfig
from repro.service.supervisor import (
    ReadRequest,
    ReadView,
    SessionSupervisor,
)

__all__ = ["ServiceOptions", "SupervisedDriver", "simulate_service"]


@dataclass(frozen=True)
class ServiceOptions:
    """Everything one supervised run needs, in one bag."""

    config: SupervisorConfig = field(default_factory=SupervisorConfig)
    chaos: ChaosConfig | None = None
    clock: Clock | None = None
    checkpoint_dir: Any = None
    #: Issue one deadline-bounded read every N feeds (0 = no read
    #: traffic during replay; snapshot marks still read via barrier).
    read_every: int = 0
    #: Simulated read tenants per tick (``simulate_service`` only).
    tenants: int = 4


class SupervisedDriver:
    """One supervised run: supervisor + chaos bound to one session."""

    def __init__(self, session: Session,
                 options: ServiceOptions | None = None) -> None:
        self.options = options or ServiceOptions()
        clock = self.options.clock or MonotonicClock()
        self.injector: ChaosInjector | None = None
        transport = None
        checkpoint_hook = None
        if self.options.chaos is not None:
            self.injector = ChaosInjector(self.options.chaos, clock)
            transport = self.injector.transport(session)
            checkpoint_hook = self.injector.on_checkpoint
        self.supervisor = SessionSupervisor(
            session, self.options.config, clock=clock,
            transport=transport,
            checkpoint_dir=self.options.checkpoint_dir,
            checkpoint_hook=checkpoint_hook)
        self._feeds = 0
        # Per-read-tag serve tallies (tenant ids for serve_tenants,
        # "driver" for the replay loop's own reads). Like every service
        # counter these stay outside determinism digests.
        self._tenant_tallies: dict[str, dict[str, int]] = {}

    def feed(self, ops: Sequence[Any]) -> ReadView | None:
        """Admit one arrival batch and pump; maybe serve a read.

        When chaos is active, poison requests ride along with real
        traffic and *must* be rejected by the validation boundary — a
        poison batch slipping through would corrupt the digest-parity
        guarantee, so acceptance is a hard error here, not a counter.
        """
        if self.injector is not None:
            poison = self.injector.poison_request()
            if poison is not None:
                try:
                    self.supervisor.submit(poison)
                except BatchValidationError:
                    pass
                else:
                    raise AssertionError(
                        "chaos poison request was accepted by the "
                        "apply_batch validation boundary")
        self.supervisor.submit(ops)
        self.supervisor.pump()
        self._feeds += 1
        every = self.options.read_every
        if every > 0 and self._feeds % every == 0:
            view = self.supervisor.read(tag=f"feed{self._feeds}")
            self._record_view("driver", view)
            return view
        return None

    def barrier(self) -> None:
        """Drain the queue — run before every snapshot mark, so the
        recorded result ids never depend on wave boundaries."""
        self.supervisor.drain()

    def serve_tenants(self, count: int) -> list[ReadView]:
        """One tick of per-tenant read traffic (cost-ordered)."""
        requests = [ReadRequest(tag=f"tenant{i}") for i in range(count)]
        views = self.supervisor.serve_reads(requests)
        for view in views:
            self._record_view(view.tag, view)
        return views

    def _record_view(self, key: str, view: ReadView) -> None:
        tally = self._tenant_tallies.setdefault(
            key, {"reads": 0, "fresh": 0, "stale": 0, "max_lag_ops": 0})
        tally["reads"] += 1
        tally["stale" if view.stale else "fresh"] += 1
        tally["max_lag_ops"] = max(tally["max_lag_ops"], view.lag_ops)

    def service_report(self) -> dict[str, Any]:
        """Supervisor counters + chaos tallies + final state digest.

        ``per_tenant`` keys the serve tallies by tenant id (read tag),
        so a multi-tenant simulation's report shows who got served
        stale, not just how often. Everything here stays outside
        ``determinism_digest()``.
        """
        out = self.supervisor.counters()
        if self._tenant_tallies:
            out["per_tenant"] = {key: dict(value) for key, value
                                 in sorted(self._tenant_tallies.items())}
        if self.injector is not None:
            out["chaos"] = dict(self.injector.counters)
            out["chaos_active"] = list(self.options.chaos.active)
        digest = self.supervisor.state_digest()
        if digest is not None:
            out["final_state_digest"] = digest
        out["result_digest"] = self.supervisor.result_digest()
        return out


def simulate_service(trace: Any, algorithm: str = "fd-rms", *, r: int,
                     k: int = 1, seed: int | None = 0,
                     options: Mapping[str, Any] | None = None,
                     service: ServiceOptions | None = None
                     ) -> dict[str, Any]:
    """Run one scenario trace as a multi-tenant service simulation.

    Each batch-plan slice is one arrival tick: its operations are
    admitted through the supervisor, then every simulated tenant issues
    a deadline-bounded read (served cost-ordered, stale past the
    deadline). Returns a JSON-ready SLO summary; the final state digest
    is taken after a full drain, so it is comparable against a plain
    (unsupervised, fault-free) replay of the same trace.
    """
    # Imported here: the scenario layer imports this module's siblings,
    # and the service package must stay importable without it.
    from repro.api.registry import get_algorithm
    from repro.api.session import open_session
    from repro.scenarios.replay import batch_slices

    spec = get_algorithm(algorithm)
    routed = {key: value
              for key, value in sorted(dict(options or {}).items())
              if spec.accepts_var_kwargs or key in spec.option_names}
    service = service or ServiceOptions()
    workload = trace.workload
    session = open_session(workload.initial, r, k=k, algo=algorithm,
                           seed=seed, **routed)
    ticks = 0
    stale_tags: list[str] = []
    try:
        driver = SupervisedDriver(session, service)
        for start, stop in batch_slices(trace):
            driver.feed(workload.operations[start:stop])
            for view in driver.serve_tenants(service.tenants):
                if view.stale:
                    stale_tags.append(view.tag)
            ticks += 1
        driver.barrier()
        report = driver.service_report()
        return {
            "scenario": trace.scenario,
            "algorithm": spec.display_name,
            "trace_hash": trace.content_hash,
            "n_operations": workload.n_operations,
            "ticks": ticks,
            "tenants": service.tenants,
            "stale_tenant_serves": len(stale_tags),
            "result_size": len(session.result()),
            "service": report,
        }
    finally:
        closer = getattr(session, "close", None)
        if callable(closer):
            closer()
