"""Supervised session runtime: the service layer over the Session API.

The engine (PR 1-5), the persistence layer (PR 7), and the parallel
backend (PR 8) are crash-safe and deterministic *per call*. This
package adds the robustness a long-lived service needs *between* calls:

* :class:`~repro.service.supervisor.SessionSupervisor` — bounded
  admission queue that coalesces incoming operations into
  ``apply_batch`` waves (exact-parity semantics make coalescing
  correctness-free), cost-aware time-boxed wave execution with leftover
  resume, deterministic retry/backoff for transient faults, a circuit
  breaker that degrades to the bit-exact inline path and periodically
  probes for re-pooling, stale-result load shedding for reads, and a
  checkpoint watchdog that keeps recovery time bounded.
* :mod:`~repro.service.policy` — the typed failure policy:
  :class:`RetryPolicy` (capped exponential backoff, deterministic — no
  wall-clock-seeded jitter), :class:`CircuitBreaker`, and the
  :class:`CostModel` behind cost-ordered scheduling (the
  ``sort_by_cost`` / timeout / incremental pattern).
* :mod:`~repro.service.chaos` — seeded, deterministic runtime fault
  injectors (latency spikes, worker-pool kills, malformed batch ops,
  checkpoint-write failures, transient transport faults) that plug into
  the replay driver; under every injector the supervised run's final
  state digest is byte-identical to a fault-free run.
* :mod:`~repro.service.driver` — the supervised replay/simulation loop
  behind ``repro replay --supervised [--chaos ...]`` and
  ``repro serve-sim``.

The digest-safety contract (docs/ROBUSTNESS.md): supervision and chaos
may change *when* work happens — latency, wave boundaries, retry
counts, staleness of shed reads — but never *what* the engine computes.
Write order is FIFO (tuple-id assignment makes write order semantic);
only side-effect-free read requests are reordered by estimated cost.
"""

from repro.service.chaos import ChaosConfig, ChaosInjector, parse_chaos
from repro.service.clock import Clock, MonotonicClock, VirtualClock
from repro.service.driver import (
    ServiceOptions,
    SupervisedDriver,
    simulate_service,
)
from repro.service.policy import (
    BreakerOpenError,
    CircuitBreaker,
    CostModel,
    RetryExhaustedError,
    RetryPolicy,
    SupervisorConfig,
    TransientServiceError,
)
from repro.service.supervisor import (
    ReadView,
    ServiceReport,
    SessionSupervisor,
    result_digest,
)

__all__ = [
    "BreakerOpenError",
    "ChaosConfig",
    "ChaosInjector",
    "CircuitBreaker",
    "Clock",
    "CostModel",
    "MonotonicClock",
    "ReadView",
    "RetryExhaustedError",
    "RetryPolicy",
    "ServiceOptions",
    "ServiceReport",
    "SessionSupervisor",
    "SupervisedDriver",
    "SupervisorConfig",
    "TransientServiceError",
    "VirtualClock",
    "parse_chaos",
    "result_digest",
    "simulate_service",
]
