"""Injectable clocks: monotonic wall time for services, virtual for tests.

Every time-dependent decision in the service layer — deadlines, wave
time-boxes, backoff delays, breaker reset intervals — reads the clock
through this interface, never ``time.time`` (reprolint RPL005: wall
clock dates/times never reach digests or schedules). Two
implementations:

* :class:`MonotonicClock` — ``time.perf_counter`` + ``time.sleep``;
  what a real deployment uses.
* :class:`VirtualClock` — time advances only when someone sleeps (or
  calls :meth:`VirtualClock.advance`), so chaos tests replay their
  latency spikes, retry schedules, and breaker transitions exactly,
  run after run, with zero real waiting.

The supervisor's digest-safety contract does not depend on which clock
is used: timing only moves wave boundaries and staleness, never the
operation stream (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Monotonic seconds plus a sleep primitive."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or virtually advance) for ``seconds``."""
        ...


class MonotonicClock:
    """Real time: ``time.perf_counter`` / ``time.sleep``."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """Deterministic simulated time for tests and chaos replays."""

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._t

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.sleeps.append(seconds)
        self._t += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._t += max(0.0, float(seconds))
