"""The supervised session runtime: admission, waves, failure policy.

:class:`SessionSupervisor` wraps any streaming
:class:`~repro.api.session.Session` behind a bounded admission queue
and drives it in ``apply_batch`` waves. The design invariant — the
reason every robustness feature here is digest-safe — is:

    Supervision changes *when* work happens, never *what* is computed.

Concretely:

* **Admission / coalescing.** Submitted operations join a bounded FIFO
  queue and are applied in coalesced waves. Batched-vs-sequential
  exact parity (PR 2/5) means wave boundaries are free: any split of
  the same operation sequence yields a byte-identical engine state.
* **Write order is semantic.** Tuple ids are assigned in application
  order, so write operations are *never* reordered — cost-aware
  scheduling reorders only side-effect-free read requests
  (cheapest-first with litmus-style timeout semantics: once one read
  misses its budget, every costlier read is served stale immediately).
* **Time-boxed waves, leftover resume.** The cost model sizes each
  wave so its estimated cost fits the wave budget; whatever remains
  queued simply resumes in the next wave. Deadlines bound latency,
  never drop writes.
* **Typed failure policy.** Transient faults (see
  :func:`~repro.service.policy.is_transient`) retry on a deterministic
  backoff schedule, but only when the engine provably did not mutate
  (a cheap ``(capacity, size)`` witness detects partial application);
  exhaustion falls back to the bit-exact inline path and feeds the
  circuit breaker. A worker-pool death trips the breaker immediately;
  half-open probes attempt re-pooling via
  :meth:`~repro.parallel.backend.SharedMemoryBackend.restore`.
* **Load shedding.** Reads past their deadline are served from the
  last materialized result with an explicit staleness marker
  (``ReadView.stale`` + ``lag_ops``) instead of blocking. Writes are
  never shed: a full queue pushes back by draining waves inline during
  ``submit`` (bounded admission latency, counted).
* **Checkpoint watchdog.** Every ``checkpoint_every_ops`` applied
  operations the session is checkpointed (retry-wrapped; failures on
  this non-critical path are counted and skipped, never fatal), so
  recovery time stays bounded.

None of the service counters ever feed a replay digest — see
docs/ROBUSTNESS.md for the full contract table.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.api.session import Session, validate_batch
from repro.data.database import Operation
from repro.service.clock import Clock, MonotonicClock
from repro.service.policy import (
    CircuitBreaker,
    CostModel,
    RetryExhaustedError,
    SupervisorConfig,
    is_transient,
)

__all__ = ["ReadRequest", "ReadView", "ServiceReport", "SessionSupervisor",
           "result_digest"]

#: Cost-model key for result materialization (reads).
_READ_KIND = "read"


def result_digest(session: Session) -> str:
    """Wave-boundary-invariant digest of a session's observable state.

    Hashes the alive database content (ids in ascending order plus
    their point rows — exact input bytes, untouched by execution
    strategy) and the current result id sequence. Unlike the engine's
    ``state_digest`` it excludes derived float caches
    (``member_scores``/``tau``), which can differ in the last ulp
    between batch-GEMM and singleton scoring paths when wave boundaries
    move — so this digest is the one chaos/overload legs (and the
    server's digest-parity checks) with time-dependent wave splits are
    compared on.

    Module-level so the network server and its load generator can
    compute the *same* digest on both the served and the inline
    reference side without holding a supervisor.
    """
    h = hashlib.sha256()
    ids, points = session.db.snapshot()
    h.update(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(points, dtype=np.float64).tobytes())
    result = np.asarray(list(session.result()), dtype=np.int64)
    h.update(result.tobytes())
    return f"sha256:{h.hexdigest()}"


@dataclass(frozen=True)
class ReadRequest:
    """One queued read: a tag for the caller, an optional deadline."""

    tag: str = ""
    deadline_s: float | None = None


@dataclass(frozen=True)
class ReadView:
    """A served read: result ids plus an explicit staleness marker.

    ``stale`` is True when the view was shed from the last materialized
    result instead of draining the queue; ``lag_ops`` is the number of
    admitted-but-unapplied operations the view is behind by (0 for a
    fresh view).
    """

    ids: tuple[int, ...]
    stale: bool
    lag_ops: int
    tag: str = ""


@dataclass
class ServiceReport:
    """Runtime counters of one supervisor (never part of any digest)."""

    admitted_requests: int = 0
    admitted_ops: int = 0
    rejected_requests: int = 0
    waves: int = 0
    applied_ops: int = 0
    resumed_pumps: int = 0
    backpressure_events: int = 0
    max_queue_depth: int = 0
    retries: int = 0
    retry_exhausted: int = 0
    inline_fallbacks: int = 0
    backend_degrades: int = 0
    repools: int = 0
    fresh_serves: int = 0
    stale_serves: int = 0
    forced_materializations: int = 0
    checkpoints: int = 0
    checkpoint_failures: int = 0
    admission_ms: list[float] = field(default_factory=list)

    def admission_percentiles(self) -> dict[str, float]:
        """p50/p99/max admission latency (ms) across submit calls."""
        if not self.admission_ms:
            return {"p50": 0.0, "p99": 0.0, "max": 0.0}
        lat = np.asarray(self.admission_ms, dtype=float)
        p50, p99 = np.percentile(lat, [50, 99])
        return {"p50": round(float(p50), 5), "p99": round(float(p99), 5),
                "max": round(float(lat.max()), 5)}

    def to_dict(self) -> dict[str, Any]:
        out = {key: value for key, value in sorted(vars(self).items())
               if key != "admission_ms"}
        out["admission_latency_ms"] = self.admission_percentiles()
        return out


class SessionSupervisor:
    """Bounded, deadline-aware, failure-typed runtime over a Session.

    Parameters
    ----------
    session : Session
        The wrapped session. The supervisor does not own it: callers
        close the session themselves after :meth:`drain`.
    config : SupervisorConfig
        Queue, wave, deadline, retry, and breaker tunables.
    clock : Clock
        Injectable time source (virtual in tests, monotonic in
        services). All deadlines and backoff sleeps use it.
    transport : callable, optional
        Replaces ``session.apply_batch`` as the wave-application path —
        the chaos layer wraps the session here. Contract: a transport
        that raises must not have mutated the engine (the supervisor
        additionally verifies this with a mutation witness before
        retrying).
    checkpoint_dir : path-like, optional
        Enables the checkpoint watchdog (with
        ``config.checkpoint_every_ops > 0`` and a session that has a
        ``checkpoint`` method).
    checkpoint_hook : callable, optional
        Called before every watchdog checkpoint (the chaos layer
        injects checkpoint-write failures here).
    """

    def __init__(self, session: Session,
                 config: SupervisorConfig | None = None, *,
                 clock: Clock | None = None,
                 transport: Callable[[Sequence[Operation]], Any] | None = None,
                 checkpoint_dir: Any = None,
                 checkpoint_hook: Callable[[], None] | None = None) -> None:
        self._session = session
        self.config = config or SupervisorConfig()
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._transport = transport if transport is not None \
            else session.apply_batch
        self._queue: deque[Operation] = deque()
        self._cost = CostModel(prior_s=self.config.cost_prior_s,
                               alpha=self.config.cost_alpha)
        self._breaker = CircuitBreaker(
            self._clock, failure_threshold=self.config.breaker_threshold,
            reset_after_s=self.config.breaker_reset_s)
        self.report = ServiceReport()
        self._last_result: tuple[int, ...] | None = None
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_hook = checkpoint_hook
        self._ops_since_checkpoint = 0
        engine = getattr(session, "engine", None)
        self._backend = getattr(engine, "backend", None)
        self._backend_was_degraded = bool(
            getattr(self._backend, "degraded", False))

    # -- introspection -------------------------------------------------
    @property
    def session(self) -> Session:
        return self._session

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def pending_ops(self) -> int:
        """Admitted operations not yet applied."""
        return len(self._queue)

    def state_digest(self) -> str | None:
        """The wrapped engine's logical state digest (FD-RMS only)."""
        engine = getattr(self._session, "engine", None)
        digest = getattr(engine, "state_digest", None)
        return digest() if callable(digest) else None

    def result_digest(self) -> str:
        """The wrapped session's :func:`result_digest`."""
        return result_digest(self._session)

    def counters(self) -> dict[str, Any]:
        """Service counters + breaker state, JSON-ready.

        Everything here describes *when* work happened (latency, waves,
        retries, staleness), so none of it ever feeds a replay digest.
        """
        out = self.report.to_dict()
        out["pending_ops"] = len(self._queue)
        out["breaker"] = {
            "state": self._breaker.state,
            "trips": self._breaker.trips,
            "probes": self._breaker.probes,
            "recoveries": self._breaker.recoveries,
        }
        return out

    # -- admission -----------------------------------------------------
    def submit(self, ops: Iterable[Operation | dict[str, Any]]) -> int:
        """Validate and admit a request; returns the ops admitted.

        The whole request is validated *before* anything is queued — a
        malformed request is rejected atomically
        (:class:`~repro.api.session.BatchValidationError`) and the
        engine state is untouched. When admitting would overflow the
        bounded queue, the supervisor pushes back by draining waves
        inline until the request fits: admission latency grows under
        overload (measured, reported as percentiles) but acknowledged
        writes are never dropped.
        """
        start = self._clock.now()
        try:
            batch = validate_batch(ops, d=self._session.db.d)
        except Exception:
            self.report.rejected_requests += 1
            raise
        while (self._queue and
               len(self._queue) + len(batch) > self.config.queue_limit):
            self.report.backpressure_events += 1
            self._pump_wave()
        self._queue.extend(batch)
        self.report.admitted_requests += 1
        self.report.admitted_ops += len(batch)
        self.report.max_queue_depth = max(self.report.max_queue_depth,
                                          len(self._queue))
        self.report.admission_ms.append(
            1e3 * (self._clock.now() - start))
        return len(batch)

    # -- wave execution ------------------------------------------------
    def _next_wave(self) -> list[Operation]:
        """Dequeue the next cost-sized wave (always >= 1 op if queued)."""
        wave: list[Operation] = []
        budget = self.config.wave_budget_s
        est = 0.0
        while self._queue and len(wave) < self.config.max_wave:
            op_cost = self._cost.estimate(self._queue[0].kind)
            if wave and est + op_cost > budget:
                break
            wave.append(self._queue.popleft())
            est += op_cost
        return wave

    def _mutation_witness(self) -> tuple[int, int]:
        # Tuple ids are never reused, so capacity is monotone in
        # inserts and size is monotone-down in deletes: the pair
        # changes iff at least one operation was applied.
        db = self._session.db
        return (db.capacity, len(db))

    def _apply_with_retry(self, fn: Callable[[Sequence[Operation]], Any],
                          wave: Sequence[Operation]) -> None:
        """Run ``fn(wave)`` under the deterministic retry schedule.

        Retries only transient faults, and only when the mutation
        witness shows the failed attempt did not touch the engine —
        a partially-applied wave must never be re-applied.
        """
        delays = iter(self.config.retry.delays())
        while True:
            witness = self._mutation_witness()
            try:
                fn(wave)
                return
            except Exception as exc:
                if not is_transient(exc):
                    raise
                if self._mutation_witness() != witness:
                    # The engine absorbed part of the wave before the
                    # fault: retrying would double-apply. Surface the
                    # original fault; recovery is the WAL's job.
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise RetryExhaustedError(
                        self.config.retry.max_attempts, exc) from exc
                self.report.retries += 1
                self._clock.sleep(delay)

    def _pump_wave(self) -> int:
        """Apply one wave through the failure policy; returns op count."""
        wave = self._next_wave()
        if not wave:
            return 0
        use_transport = True
        probing = False
        if self._breaker.is_open:
            if self._breaker.should_probe():
                probing = True
                self._try_repool()
            else:
                use_transport = False
        start = self._clock.now()
        if use_transport:
            try:
                self._apply_with_retry(self._transport, wave)
                self._breaker.record_success()
            except RetryExhaustedError:
                self.report.retry_exhausted += 1
                self._breaker.record_failure()
                # Bit-exact inline path: the transport never mutated
                # (enforced above), so applying directly is the same
                # computation minus the flaky layer.
                self.report.inline_fallbacks += 1
                self._session.apply_batch(wave)
        else:
            self.report.inline_fallbacks += 1
            self._session.apply_batch(wave)
        seconds = self._clock.now() - start
        per_op = seconds / len(wave)
        # reprolint: disable=RPL001 -- sorted() fixes observation order
        for kind in sorted({op.kind for op in wave}):
            self._cost.observe(kind, per_op)
        self.report.waves += 1
        self.report.applied_ops += len(wave)
        self._ops_since_checkpoint += len(wave)
        self._check_backend(probing)
        self._maybe_checkpoint()
        return len(wave)

    def _check_backend(self, probing: bool) -> None:
        """Track pool health; a pooled→degraded transition trips fast."""
        backend = self._backend
        if backend is None:
            return
        degraded = bool(getattr(backend, "degraded", False))
        if degraded and not self._backend_was_degraded:
            self.report.backend_degrades += 1
            # A dead pool is definitive — open immediately so waves
            # stop paying for it and probes get scheduled.
            self._breaker.trip()
        elif probing and not degraded and self._backend_was_degraded:
            self.report.repools += 1
        self._backend_was_degraded = degraded

    def _try_repool(self) -> None:
        restore = getattr(self._backend, "restore", None)
        if callable(restore) and getattr(self._backend, "degraded", False):
            restore()

    def _maybe_checkpoint(self) -> None:
        every = self.config.checkpoint_every_ops
        checkpoint = getattr(self._session, "checkpoint", None)
        if (every <= 0 or self._checkpoint_dir is None
                or not callable(checkpoint)
                or self._ops_since_checkpoint < every):
            return
        # Reset first: a persistently failing checkpoint path must not
        # retry on every subsequent wave.
        self._ops_since_checkpoint = 0

        def write(_ops: Sequence[Operation]) -> None:
            if self._checkpoint_hook is not None:
                self._checkpoint_hook()
            checkpoint(self._checkpoint_dir)

        try:
            self._apply_with_retry(write, ())
            self.report.checkpoints += 1
        except Exception:
            # Non-critical path: a checkpoint that keeps failing is
            # skipped (recovery falls back to the previous one), never
            # fatal to the op stream.
            self.report.checkpoint_failures += 1

    def pump(self, budget_s: float | None = None) -> int:
        """Apply queued waves within a time budget; returns ops applied.

        At least one wave runs whenever work is queued (guaranteed
        progress); leftover operations simply resume in the next pump —
        the time-box bounds latency, not completeness.
        """
        budget = self.config.pump_budget_s if budget_s is None else budget_s
        start = self._clock.now()
        applied = 0
        while self._queue:
            if applied and self._clock.now() - start >= budget:
                self.report.resumed_pumps += 1
                break
            applied += self._pump_wave()
        return applied

    def drain(self) -> int:
        """Apply everything queued (a barrier); returns ops applied."""
        applied = 0
        while self._queue:
            applied += self._pump_wave()
        return applied

    # -- reads ---------------------------------------------------------
    def _read_cost(self, _req: ReadRequest) -> float:
        kinds = [op.kind for op in self._queue]
        return (self._cost.estimate_ops(kinds)
                + self._cost.estimate(_READ_KIND))

    def _materialize(self, tag: str) -> ReadView:
        start = self._clock.now()
        ids = tuple(self._session.result())
        self._cost.observe(_READ_KIND, self._clock.now() - start)
        self._last_result = ids
        self.report.fresh_serves += 1
        return ReadView(ids=ids, stale=False, lag_ops=0, tag=tag)

    def _serve_stale(self, tag: str) -> ReadView:
        assert self._last_result is not None
        self.report.stale_serves += 1
        return ReadView(ids=self._last_result, stale=True,
                        lag_ops=len(self._queue), tag=tag)

    def serve_reads(self, requests: Sequence[ReadRequest]
                    ) -> list[ReadView]:
        """Serve read requests cost-ordered with timeout degradation.

        Reads are side-effect-free, so they are the one request class
        the supervisor reorders: cheapest estimated cost first (the
        litmus ``sort_by_cost`` pattern). Each request's budget is its
        deadline (or the config default); a read whose estimate exceeds
        its budget — or any read after the first one that actually ran
        out of time — is served from the last materialized result with
        a staleness marker instead of blocking. A fresh result is
        always produced if none was ever materialized (there is nothing
        meaningful to shed to).
        """
        views: list[ReadView | None] = [None] * len(requests)
        order = sorted(range(len(requests)),
                       key=lambda i: (self._read_cost(requests[i]), i))
        timed_out = False
        for i in order:
            req = requests[i]
            budget = (self.config.read_deadline_s if req.deadline_s is None
                      else req.deadline_s)
            if self._last_result is None:
                self.report.forced_materializations += 1
                self.drain()
                views[i] = self._materialize(req.tag)
                continue
            if timed_out or self._read_cost(req) > budget:
                timed_out = True
                views[i] = self._serve_stale(req.tag)
                continue
            start = self._clock.now()
            while self._queue and self._clock.now() - start < budget:
                self._pump_wave()
            if self._queue:
                timed_out = True
                views[i] = self._serve_stale(req.tag)
            else:
                views[i] = self._materialize(req.tag)
        return [view for view in views if view is not None]

    def read(self, *, deadline_s: float | None = None,
             tag: str = "") -> ReadView:
        """Serve one read under a deadline (stale beyond it)."""
        return self.serve_reads([ReadRequest(tag=tag,
                                             deadline_s=deadline_s)])[0]
