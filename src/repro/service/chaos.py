"""Seeded runtime fault injection for the supervised session runtime.

PR 7 proved the persistence layer crash-safe with a fault-injecting
filesystem; this module does the same for the *runtime*: a
:class:`ChaosInjector` wraps the supervisor's transport and checkpoint
paths with deterministic, seeded faults, and the replay driver asserts
that the final state digest is byte-identical to a fault-free run.

The injector catalog:

``latency``
    Sleeps the supervisor's clock before a wave is applied — exercises
    wave time-boxing, deadline pressure, and stale-read shedding.
``transient``
    Raises :class:`~repro.service.policy.TransientServiceError`
    *before* delegating to the session (a failed attempt provably
    never mutated the engine, so the retry schedule is safe by
    construction). Bursts longer than the retry schedule exhaust it
    and exercise the inline fallback + circuit breaker.
``pool-kill``
    SIGKILLs the shared-memory backend's worker processes at chosen
    wave indices. The next parallel wave hits ``BrokenProcessPool``
    and rides the backend's existing bit-exact inline degrade; the
    supervisor's breaker then drives re-pool probes.
``malformed``
    Emits poison requests (unknown kind, NaN coordinates, duplicate
    ids, ...) for the driver to submit alongside real traffic; the
    ``apply_batch`` validation boundary must reject them atomically.
``checkpoint``
    Raises ``OSError`` inside the checkpoint watchdog's write hook —
    a non-critical path that must retry, then skip, never corrupt.

Every injector is digest-safe **by construction**: faults are raised
before any mutation, latency only advances the clock, pool kills reuse
the backend's proven inline recompute, and poison requests are rejected
at the validation boundary. All randomness flows through one
``np.random.default_rng([seed, salt])`` stream (reprolint RPL003), so
a chaos run replays exactly under a virtual clock.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.service.clock import Clock
from repro.service.policy import TransientServiceError

__all__ = ["ChaosConfig", "ChaosInjector", "parse_chaos"]

# Stream salt, derived from the module name the same way scenario
# compilation salts its seed (spec.py convention).
_SALT = sum(ord(ch) for ch in "chaos")


@dataclass(frozen=True)
class ChaosConfig:
    """Which injectors run, and how hard. Rates are per transport call
    (``malformed_rate`` is per driver feed)."""

    seed: int = 0
    latency_rate: float = 0.0
    latency_s: float = 0.005
    transient_rate: float = 0.0
    #: Consecutive transient faults per trigger; longer than the retry
    #: schedule (default 4 attempts) exhausts it.
    transient_burst: int = 2
    pool_kill_waves: tuple[int, ...] = ()
    malformed_rate: float = 0.0
    checkpoint_fail_rate: float = 0.0

    @property
    def active(self) -> tuple[str, ...]:
        """Names of the enabled injectors (for reports)."""
        names = []
        if self.latency_rate > 0:
            names.append("latency")
        if self.transient_rate > 0:
            names.append("transient")
        if self.pool_kill_waves:
            names.append("pool-kill")
        if self.malformed_rate > 0:
            names.append("malformed")
        if self.checkpoint_fail_rate > 0:
            names.append("checkpoint")
        return tuple(names)


#: Defaults applied when an injector is named without parameters.
_PRESETS: dict[str, dict[str, Any]] = {
    "latency": {"latency_rate": 0.25, "latency_s": 0.005},
    "transient": {"transient_rate": 0.15, "transient_burst": 2},
    "pool-kill": {"pool_kill_waves": (8,)},
    "malformed": {"malformed_rate": 0.1},
    "checkpoint": {"checkpoint_fail_rate": 0.5},
}

#: Spec keys accepted per injector: spec key -> (config field, parser).
_PARAMS: dict[str, dict[str, tuple[str, Callable[[str], Any]]]] = {
    "latency": {"rate": ("latency_rate", float),
                "dur": ("latency_s", float)},
    "transient": {"rate": ("transient_rate", float),
                  "burst": ("transient_burst", int)},
    "pool-kill": {"at": ("pool_kill_waves",
                         lambda v: tuple(int(x) for x in v.split("+")))},
    "malformed": {"rate": ("malformed_rate", float)},
    "checkpoint": {"rate": ("checkpoint_fail_rate", float)},
}


def parse_chaos(spec: str, seed: int = 0) -> ChaosConfig:
    """Parse a ``--chaos`` spec string into a :class:`ChaosConfig`.

    The spec is a comma-separated list of injector names, each with
    optional colon-separated ``key=value`` parameters (wave lists use
    ``+`` since commas separate injectors)::

        latency
        latency:rate=0.5:dur=0.01,pool-kill:at=4+12,transient
        all

    ``all`` enables every injector at its preset intensity.
    """
    config = ChaosConfig(seed=seed)
    names = list(_PRESETS) if spec.strip() == "all" else [
        token for token in spec.split(",") if token.strip()]
    if not names:
        raise ValueError("empty chaos spec")
    for token in names:
        parts = token.strip().split(":")
        name = parts[0]
        if name not in _PRESETS:
            raise ValueError(
                f"unknown chaos injector {name!r}; "
                f"expected one of {sorted(_PRESETS)} or 'all'")
        config = replace(config, **_PRESETS[name])
        for part in parts[1:]:
            key, sep, raw = part.partition("=")
            if not sep or key not in _PARAMS[name]:
                raise ValueError(
                    f"bad chaos parameter {part!r} for {name!r}; "
                    f"expected one of {sorted(_PARAMS[name])}")
            field_name, parse = _PARAMS[name][key]
            config = replace(config, **{field_name: parse(raw)})
    return config


# Poison-request catalog for the ``malformed`` injector. Each entry is
# a batch that must be rejected whole by the validation boundary.
_POISON: tuple[tuple[dict[str, Any], ...], ...] = (
    ({"kind": "mutate", "id": 0},),                       # unknown kind
    ({"kind": "insert"},),                                # missing point
    ({"kind": "delete"},),                                # missing id
    ({"kind": "insert", "point": [float("nan"), 0.5]},),  # NaN coordinate
    ({"kind": "delete", "id": 3}, {"kind": "delete", "id": 3}),  # dup ids
)


class ChaosInjector:
    """Deterministic fault source bound to one supervised run.

    ``transport(session)`` returns the wave-application callable the
    supervisor should use instead of ``session.apply_batch``;
    ``on_checkpoint`` is the watchdog hook; ``poison_request()`` is
    polled by the driver once per feed. ``counters`` tallies every
    injected fault for the service report (never any digest).
    """

    def __init__(self, config: ChaosConfig, clock: Clock) -> None:
        self.config = config
        self._clock = clock
        self._rng = np.random.default_rng([config.seed, _SALT])
        self._wave_index = 0
        self._pending_transient = 0
        self._kill_waves = set(config.pool_kill_waves)
        self._backend: Any = None
        self.counters: dict[str, int] = {
            "latency_spikes": 0, "transient_faults": 0, "pool_kills": 0,
            "malformed_injected": 0, "checkpoint_faults": 0,
        }

    def _draw(self, rate: float) -> bool:
        return rate > 0 and float(self._rng.random()) < rate

    # -- transport -----------------------------------------------------
    def transport(self, session: Any) -> Callable[[Sequence[Any]], Any]:
        """Wrap ``session.apply_batch`` with the enabled wave faults.

        Fault ordering per call: pool kill (infrastructure), then
        latency, then transient fault — all strictly *before*
        delegating, so a raising call never mutated the engine and the
        supervisor's retry is safe.
        """
        engine = getattr(session, "engine", None)
        self._backend = getattr(engine, "backend", None)

        def apply(ops: Sequence[Any]) -> Any:
            self._wave_index += 1
            if self._wave_index in self._kill_waves:
                self._kill_pool()
            if self._draw(self.config.latency_rate):
                self.counters["latency_spikes"] += 1
                self._clock.sleep(self.config.latency_s)
            if self._pending_transient > 0 or self._draw(
                    self.config.transient_rate):
                if self._pending_transient == 0:
                    self._pending_transient = max(
                        1, self.config.transient_burst)
                self._pending_transient -= 1
                self.counters["transient_faults"] += 1
                raise TransientServiceError(
                    f"chaos: injected transport fault "
                    f"(wave {self._wave_index})")
            return session.apply_batch(ops)

        return apply

    def _kill_pool(self) -> None:
        """SIGKILL the backend's live workers (real BrokenProcessPool).

        The next parallel wave finds the pool broken and the backend
        recomputes it inline — the degrade path PR 8 proved bit-exact.
        A missing/serial/already-degraded backend makes this a no-op.
        """
        backend = self._backend
        if backend is None or getattr(backend, "degraded", False):
            return
        ensure = getattr(backend, "_ensure_executor", None)
        if not callable(ensure):
            return
        executor = ensure()
        # ProcessPoolExecutor lazily forks workers on first submit;
        # touch the pool so there is something to kill.
        try:
            executor.submit(os.getpid).result()
        except Exception:
            # Already broken (an earlier kill the engine never paid
            # for): nothing live to kill, and the injector must not
            # leak its own probe failure into the transport.
            return
        processes = dict(getattr(executor, "_processes", {}) or {})
        for pid in processes:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        if processes:
            self.counters["pool_kills"] += 1

    # -- checkpoint ----------------------------------------------------
    def on_checkpoint(self) -> None:
        """Watchdog hook: sometimes the checkpoint write "fails"."""
        if self._draw(self.config.checkpoint_fail_rate):
            self.counters["checkpoint_faults"] += 1
            raise OSError("chaos: injected checkpoint-write failure")

    # -- admission -----------------------------------------------------
    def poison_request(self) -> list[dict[str, Any]] | None:
        """A malformed batch to submit this feed, or None.

        The driver submits it like real traffic and requires the typed
        rejection — validation failing to reject (or rejecting
        non-atomically) fails the digest-parity assertion downstream.
        """
        if not self._draw(self.config.malformed_rate):
            return None
        choice = int(self._rng.integers(len(_POISON)))
        self.counters["malformed_injected"] += 1
        return [dict(op) for op in _POISON[choice]]
