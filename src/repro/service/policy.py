"""Typed failure policy: retry schedules, circuit breaking, cost model.

Three small, independently testable pieces the supervisor composes:

* :class:`RetryPolicy` — capped exponential backoff with a fully
  deterministic schedule. No jitter by design: retry timing must be a
  pure function of the attempt number so fault-injection runs replay
  exactly (CONTRIBUTING's determinism checklist; wall-clock-seeded
  jitter would also trip reprolint RPL005's spirit even where its
  letter only bans date reads).
* :class:`CircuitBreaker` — closed / open / half-open over a failure
  counter and a clock. While open, callers take the bit-exact inline
  path; after ``reset_after_s`` the breaker half-opens and allows one
  probe (the supervisor uses it to attempt worker-pool
  re-establishment).
* :class:`CostModel` — per-kind EWMA of observed per-operation cost,
  seeded with a prior so the first wave is already bounded. This is
  what orders read requests (cheapest first, litmus-style
  ``sort_by_cost``) and sizes write waves against their time-box.

Transient-vs-permanent classification is explicit:
:func:`is_transient` names the retryable exception types; everything
else propagates immediately (retrying a deterministic failure only
repeats it, and retrying a partially-applied engine fault could
double-apply).
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterator

from repro.service.clock import Clock


class TransientServiceError(RuntimeError):
    """A retryable fault in the service transport or backend."""


class RetryExhaustedError(RuntimeError):
    """A transient fault persisted through the whole retry schedule."""

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"transient fault persisted through {attempts} attempts: "
            f"{type(last).__name__}: {last}")
        self.attempts = attempts
        self.last = last


class BreakerOpenError(RuntimeError):
    """Raised when a probe is requested while the breaker is open."""


#: Exception types the supervisor treats as transient. Everything else
#: is permanent: it propagates to the caller un-retried.
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TransientServiceError,
    BrokenProcessPool,
    TimeoutError,
    OSError,
)


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is worth retrying under the backoff schedule."""
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with a deterministic schedule.

    ``delays()`` yields ``max_attempts - 1`` sleep durations (no sleep
    precedes the first attempt): ``base_delay_s * factor**i`` capped at
    ``max_delay_s``. The schedule is a pure function of the policy —
    no jitter — so retry timing replays exactly under a virtual clock.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.005
    factor: float = 2.0
    max_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule, one delay per retry."""
        for attempt in range(self.max_attempts - 1):
            yield min(self.base_delay_s * self.factor ** attempt,
                      self.max_delay_s)


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting breaker with clock-based half-open probes.

    ``record_success`` / ``record_failure`` drive the state machine:
    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_after_s`` on the supplied clock :meth:`should_probe`
    returns True exactly once per interval (half-open), and the next
    ``record_success`` closes the breaker again while a failure
    re-opens it (restarting the interval). Counters are exposed for
    the service report; none of this state ever reaches a digest.
    """

    def __init__(self, clock: Clock, *, failure_threshold: int = 3,
                 reset_after_s: float = 0.5) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._clock = clock
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.probes = 0
        self.recoveries = 0
        self._opened_at = 0.0

    @property
    def is_open(self) -> bool:
        return self.state != CLOSED

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self.recoveries += 1
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.state = OPEN
            self.trips += 1
            self._opened_at = self._clock.now()
        elif self.state == OPEN:
            # Failure while open (shouldn't normally be reported, but a
            # probe path may) restarts the cool-down.
            self._opened_at = self._clock.now()

    def trip(self) -> None:
        """Force the breaker open immediately (e.g. on pool degrade).

        Unlike :meth:`record_failure` this does not wait for the
        failure threshold: the caller has direct evidence the backend
        is gone, so counting further failures would only waste
        attempts on a known-dead path.
        """
        if self.state != OPEN:
            self.trips += 1
        self.state = OPEN
        self.consecutive_failures = max(
            self.consecutive_failures, self.failure_threshold)
        self._opened_at = self._clock.now()

    def should_probe(self) -> bool:
        """True once per cool-down interval while open (→ half-open)."""
        if self.state != OPEN:
            return False
        if self._clock.now() - self._opened_at < self.reset_after_s:
            return False
        self.state = HALF_OPEN
        self.probes += 1
        return True


class CostModel:
    """EWMA per-operation cost estimates, per operation kind.

    Observed wave costs (seconds, from the supervisor's clock) update
    the per-kind estimate with weight ``alpha``; until a kind has been
    observed, ``prior_s`` bounds the first wave. Estimates feed two
    schedulers: write-wave sizing against the wave time-box, and
    cheapest-first ordering of read requests (reads are the only
    requests that may be reordered — write order is semantic).
    """

    def __init__(self, *, prior_s: float = 1e-4, alpha: float = 0.3) -> None:
        self.prior_s = float(prior_s)
        self.alpha = float(alpha)
        self._est: dict[str, float] = {}

    def estimate(self, kind: str) -> float:
        """Estimated seconds for one operation of ``kind``."""
        return self._est.get(kind, self.prior_s)

    def estimate_ops(self, kinds: "list[str] | tuple[str, ...]") -> float:
        """Estimated seconds for a sequence of operations."""
        return sum(self.estimate(kind) for kind in kinds)

    def observe(self, kind: str, per_op_seconds: float) -> None:
        """Blend one observed per-op cost into the ``kind`` estimate."""
        per_op_seconds = max(0.0, float(per_op_seconds))
        prev = self._est.get(kind)
        if prev is None:
            self._est[kind] = per_op_seconds
        else:
            self._est[kind] = (self.alpha * per_op_seconds
                               + (1.0 - self.alpha) * prev)


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of one :class:`~repro.service.SessionSupervisor`.

    All durations are seconds on the supervisor's clock. Defaults suit
    the scenario scale CI replays (hundreds to thousands of ops); a
    real deployment would raise the queue and wave limits with the
    machine.
    """

    #: Bounded admission: queued (admitted, unapplied) operations never
    #: exceed this. A submit that would overflow first drains waves
    #: inline (backpressure) — writes are never dropped.
    queue_limit: int = 4096
    #: Hard cap on operations per ``apply_batch`` wave.
    max_wave: int = 512
    #: Time-box for one wave: the cost model sizes the wave so its
    #: estimated cost fits; leftover ops resume in the next wave.
    wave_budget_s: float = 0.05
    #: Time-box for one ``pump()`` call (several waves).
    pump_budget_s: float = 0.25
    #: Default deadline for ``read()``; beyond it the last materialized
    #: result is served with a staleness marker instead of blocking.
    read_deadline_s: float = 0.05
    #: Checkpoint watchdog: checkpoint every N applied ops (0 = off;
    #: requires a checkpoint directory).
    checkpoint_every_ops: int = 0
    #: Retry policy for transient faults (deterministic schedule).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Breaker: consecutive transient failures before degrading to the
    #: inline path.
    breaker_threshold: int = 3
    #: Breaker cool-down before a half-open re-pool probe.
    breaker_reset_s: float = 0.5
    #: Cost-model prior and blend weight.
    cost_prior_s: float = 1e-4
    cost_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.max_wave < 1:
            raise ValueError("max_wave must be >= 1")
